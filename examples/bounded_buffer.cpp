// Bounded buffer under all three software systems (§5.3) using the same
// policy-templated queue the PARSEC kernels use.  Demonstrates that one
// source of truth for the data structure serves pthread condvars, our
// condvars under locks, and full transactionalization -- and measures
// their relative throughput on this machine.
//
// Build & run:  cmake --build build && ./build/examples/bounded_buffer
#include <cstdio>
#include <thread>

#include "apps/bounded_queue.h"
#include "util/timing.h"

namespace {

template <typename Policy>
double run_system(int items) {
  tmcv::apps::BoundedQueue<Policy> queue(8);
  tmcv::Stopwatch sw;
  std::thread consumer([&] {
    std::uint64_t value = 0;
    std::uint64_t expected = 1;
    while (queue.pop(value)) {
      if (value != expected) {
        std::printf("FIFO violation: got %llu want %llu\n",
                    static_cast<unsigned long long>(value),
                    static_cast<unsigned long long>(expected));
        return;
      }
      ++expected;
    }
  });
  for (int i = 1; i <= items; ++i)
    queue.push(static_cast<std::uint64_t>(i));
  queue.close();
  consumer.join();
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  constexpr int kItems = 30000;
  std::printf("Bounded buffer, %d items through an 8-slot queue:\n\n",
              kItems);
  const double t_pthread = run_system<tmcv::apps::PthreadPolicy>(kItems);
  std::printf("  %-34s %8.1f k items/s\n",
              "Parsec+pthreadCondVar (baseline)", kItems / t_pthread / 1e3);
  const double t_tmcv = run_system<tmcv::apps::TmCvPolicy>(kItems);
  std::printf("  %-34s %8.1f k items/s\n", "Parsec+TMCondVar",
              kItems / t_tmcv / 1e3);
  const double t_tm = run_system<tmcv::apps::TxnPolicy>(kItems);
  std::printf("  %-34s %8.1f k items/s\n", "TMParsec+TMCondVar",
              kItems / t_tm / 1e3);
  std::printf("\nAll three preserved strict FIFO order; the transaction-"
              "friendly condvar costs about the same as the pthread one "
              "(the paper's central claim).\n");
  return 0;
}
