// Two ways to wait on a predicate inside a transaction:
//
//   1. Transaction-friendly condition variables (this paper): explicit
//      NOTIFY, targeted wake-ups.
//   2. Harris-style retry (§6/§7, implemented here as tm::retry_wait):
//      no notification code at all -- any writing commit re-runs the
//      waiting transaction.
//
// The same bounded counter is driven both ways; compare the code shapes.
//
// Build & run:  cmake --build build && ./build/examples/retry_vs_condvar
#include <cstdio>
#include <thread>

#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"

namespace {

using namespace tmcv;

void condvar_style() {
  std::printf("[condvar] consumer waits via tx_condition_variable\n");
  tx_condition_variable cv;
  tm::var<int> count(0);
  std::thread consumer([&] {
    for (int want = 1; want <= 3; ++want) {
      for (;;) {
        bool got = false;
        tm::atomically([&] {
          got = false;
          if (count.load() > 0) {
            count.store(count.load() - 1);
            got = true;
            return;
          }
          cv.wait_final_tx();  // sleep until an explicit notify
        });
        if (got) break;
      }
      std::printf("[condvar]   consumed (%d/3)\n", want);
    }
  });
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    tm::atomically([&] {
      count.store(count.load() + 1);
      cv.notify_one();  // the producer must remember to notify
    });
  }
  consumer.join();
}

void retry_style() {
  std::printf("[retry]   consumer waits via tm::retry_wait\n");
  tm::var<int> count(0);
  std::thread consumer([&] {
    for (int want = 1; want <= 3; ++want) {
      tm::atomically([&] {
        if (count.load() == 0) tm::retry_wait();  // that's the whole wait
        count.store(count.load() - 1);
      });
      std::printf("[retry]     consumed (%d/3)\n", want);
    }
  });
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // No notify anywhere: the commit itself is the wake-up.
    tm::atomically([&] { count.store(count.load() + 1); });
  }
  consumer.join();
}

}  // namespace

int main() {
  condvar_style();
  retry_style();
  std::printf(
      "\nretry is terser; condvars wake precisely.  bench/ablation_retry "
      "quantifies the trade-off (retry re-checks on every commit).\n");
  return 0;
}
