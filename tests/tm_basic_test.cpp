// Single-threaded semantics of the TM runtime: var access, commit/abort,
// nesting, handlers, return values, irrevocability, backends.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

class TmBackends : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmBackends,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TmBackends, PlainAccessOutsideTransaction) {
  var<int> x(7);
  EXPECT_EQ(x.load(), 7);
  x.store(9);
  EXPECT_EQ(x.load(), 9);
  EXPECT_EQ(x.load_plain(), 9);
}

TEST_P(TmBackends, SimpleTransactionCommits) {
  var<int> x(0);
  atomically(GetParam(), [&] { x.store(x.load() + 1); });
  EXPECT_EQ(x.load(), 1);
}

TEST_P(TmBackends, ReadYourOwnWrite) {
  var<int> x(1);
  int seen = 0;
  atomically(GetParam(), [&] {
    x.store(42);
    seen = x.load();
  });
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(x.load(), 42);
}

TEST_P(TmBackends, MultipleWritesLastWins) {
  var<int> x(0);
  atomically(GetParam(), [&] {
    x.store(1);
    x.store(2);
    x.store(3);
  });
  EXPECT_EQ(x.load(), 3);
}

TEST_P(TmBackends, TransactionReturnsValue) {
  var<int> x(20);
  const int doubled = atomically(GetParam(), [&] { return x.load() * 2; });
  EXPECT_EQ(doubled, 40);
}

TEST_P(TmBackends, FlatNestingCommitsTogether) {
  var<int> x(0), y(0);
  atomically(GetParam(), [&] {
    x.store(1);
    atomically(GetParam(), [&] { y.store(2); });
    EXPECT_TRUE(in_txn());
    EXPECT_EQ(y.load(), 2);  // nested write visible within the flat nest
  });
  EXPECT_EQ(x.load(), 1);
  EXPECT_EQ(y.load(), 2);
}

TEST_P(TmBackends, UserExceptionAbortsAndPropagates) {
  var<int> x(5);
  EXPECT_THROW(atomically(GetParam(),
                          [&] {
                            x.store(99);
                            throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  // The speculative write must have been rolled back.
  EXPECT_EQ(x.load(), 5);
  EXPECT_FALSE(in_txn());
}

TEST_P(TmBackends, OnCommitRunsAfterCommit) {
  var<int> x(0);
  int handler_saw = -1;
  atomically(GetParam(), [&] {
    x.store(8);
    on_commit([&] {
      EXPECT_FALSE(in_txn());  // handlers run post-commit
      handler_saw = x.load();
    });
  });
  EXPECT_EQ(handler_saw, 8);
}

TEST_P(TmBackends, OnCommitDiscardedOnUserAbort) {
  var<int> x(0);
  bool handler_ran = false;
  try {
    atomically(GetParam(), [&] {
      on_commit([&] { handler_ran = true; });
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(handler_ran);
}

TEST_P(TmBackends, OnCommitImmediateOutsideTransaction) {
  bool ran = false;
  on_commit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_P(TmBackends, OnAbortRunsOnlyOnAbort) {
  bool compensated = false;
  try {
    atomically(GetParam(), [&] {
      on_abort([&] { compensated = true; });
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(compensated);

  compensated = false;
  atomically(GetParam(), [&] { on_abort([&] { compensated = true; }); });
  EXPECT_FALSE(compensated);
}

TEST_P(TmBackends, HandlersRunInRegistrationOrder) {
  std::vector<int> order;
  atomically(GetParam(), [&] {
    on_commit([&] { order.push_back(1); });
    on_commit([&] { order.push_back(2); });
    on_commit([&] { order.push_back(3); });
  });
  const std::vector<int> expected{1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST_P(TmBackends, NestedHandlersDeferToOutermostCommit) {
  var<int> x(0);
  bool ran_at_inner_end = false;
  atomically(GetParam(), [&] {
    atomically(GetParam(), [&] {
      on_commit([&] { ran_at_inner_end = true; });
    });
    // Flat nesting: the inner "commit" is not a real commit.
    EXPECT_FALSE(ran_at_inner_end);
    x.store(1);
  });
  EXPECT_TRUE(ran_at_inner_end);
}

TEST_P(TmBackends, VarSupportsPointers) {
  int a = 1, b = 2;
  var<int*> p(&a);
  atomically(GetParam(), [&] { p.store(&b); });
  EXPECT_EQ(*p.load(), 2);
}

TEST_P(TmBackends, VarSupportsSmallStructs) {
  struct Pair {
    std::int32_t a;
    std::int32_t b;
  };
  var<Pair> v(Pair{1, 2});
  atomically(GetParam(), [&] { v.store(Pair{3, 4}); });
  const Pair got = v.load();
  EXPECT_EQ(got.a, 3);
  EXPECT_EQ(got.b, 4);
}

TEST_P(TmBackends, BoxHoldsLargeStruct) {
  struct Wide {
    std::uint64_t a, b, c;
    std::int32_t d;
  };
  box<Wide> v(Wide{1, 2, 3, 4});
  atomically(GetParam(), [&] {
    Wide w = v.load();
    EXPECT_EQ(w.a, 1u);
    EXPECT_EQ(w.d, 4);
    w.a = 100;
    w.d = -7;
    v.store(w);
  });
  const Wide got = v.load_plain();
  EXPECT_EQ(got.a, 100u);
  EXPECT_EQ(got.b, 2u);
  EXPECT_EQ(got.c, 3u);
  EXPECT_EQ(got.d, -7);
}

TEST_P(TmBackends, BoxRollsBackOnAbort) {
  struct Pair {
    std::uint64_t x, y;
  };
  box<Pair> v(Pair{10, 20});
  try {
    atomically(GetParam(), [&] {
      v.store(Pair{99, 98});
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  const Pair got = v.load_plain();
  EXPECT_EQ(got.x, 10u);
  EXPECT_EQ(got.y, 20u);
}

TEST_P(TmBackends, ArrayCells) {
  tm::array<int, 8> arr;
  atomically(GetParam(), [&] {
    for (std::size_t i = 0; i < arr.size(); ++i)
      arr.store(i, static_cast<int>(i * i));
  });
  for (std::size_t i = 0; i < arr.size(); ++i)
    EXPECT_EQ(arr.load(i), static_cast<int>(i * i));
}

TEST(TmIrrevocable, RunsAndCommits) {
  var<int> x(0);
  irrevocably([&] {
    EXPECT_TRUE(in_txn());
    x.store(5);
  });
  EXPECT_EQ(x.load(), 5);
  EXPECT_FALSE(in_txn());
}

TEST(TmIrrevocable, NestsInsideItself) {
  var<int> x(0);
  irrevocably([&] {
    irrevocably([&] { x.store(1); });
    EXPECT_EQ(x.load(), 1);
  });
  EXPECT_EQ(x.load(), 1);
}

TEST(TmIrrevocable, AtomicallyNestsInsideSerial) {
  var<int> x(0);
  irrevocably([&] {
    atomically([&] { x.store(3); });  // flat: runs within the serial section
    EXPECT_EQ(x.load(), 3);
  });
  EXPECT_EQ(x.load(), 3);
}

TEST(TmIrrevocable, ReturnsValue) {
  var<int> x(21);
  EXPECT_EQ(irrevocably([&] { return x.load() * 2; }), 42);
}

TEST(TmExplicitRetry, EscalatesToSerialAndCompletes) {
  // A transaction that always self-aborts optimistically must still finish,
  // via the serial fallback.
  var<int> x(0);
  int attempts = 0;
  atomically(Backend::EagerSTM, [&] {
    ++attempts;
    if (descriptor().state() == TxState::Optimistic) retry_txn();
    x.store(1);
  });
  EXPECT_EQ(x.load(), 1);
  EXPECT_GT(attempts, kStmAttemptsBeforeSerial);
  EXPECT_GT(stats_snapshot().serial_fallbacks, 0u);
}

TEST(TmDefaults, DefaultBackendIsSettable) {
  const Backend prior = default_backend();
  set_default_backend(Backend::LazySTM);
  EXPECT_EQ(default_backend(), Backend::LazySTM);
  var<int> x(0);
  atomically([&] { x.store(1); });
  EXPECT_EQ(x.load(), 1);
  set_default_backend(prior);
}

TEST(TmStats, CountsCommitsAndReads) {
  stats_reset();
  var<int> x(0);
  atomically(Backend::EagerSTM, [&] { x.store(x.load() + 1); });
  const Stats s = stats_snapshot();
  EXPECT_GE(s.commits, 1u);
  EXPECT_GE(s.reads, 1u);
  EXPECT_GE(s.writes, 1u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(TmStats, ReadOnlyCommitCounted) {
  stats_reset();
  var<int> x(3);
  atomically(Backend::EagerSTM, [&] { (void)x.load(); });
  EXPECT_GE(stats_snapshot().ro_commits, 1u);
}

}  // namespace
}  // namespace tmcv::tm
