// Pins the process-default TM backend for a test binary, overriding the
// TMCV_DEFAULT_BACKEND environment seed (the CI norec matrix leg exports
// it for the whole suite).  Tests that assert orec- or HTM-specific
// mechanics -- fastpath read-set shapes, HTM capacity/chaos/hysteresis,
// hybrid fallback budgets -- include this header: under a NOrec default
// the family override coerces every transaction to NOrec, so those
// mechanics never engage and their assertions are vacuously wrong.
//
// Implemented as a gtest global Environment (not a static initializer):
// SetUp runs inside RUN_ALL_TESTS, deterministically after every TU's
// static initialization, so it cannot lose an ordering race against the
// env-var seed in tm/api.cpp.
#pragma once

#include <gtest/gtest.h>

#include "tm/api.h"

namespace tmcv::test {

class PinBackendEnv : public ::testing::Environment {
 public:
  explicit PinBackendEnv(tm::Backend b) : b_(b) {}
  void SetUp() override { tm::set_default_backend(b_); }

 private:
  tm::Backend b_;
};

inline const ::testing::Environment* const g_pin_backend_env =
    ::testing::AddGlobalTestEnvironment(
        new PinBackendEnv(tm::Backend::EagerSTM));

}  // namespace tmcv::test
