// Multi-word transactional storage (tm::box): no torn reads across words,
// on any backend, under concurrent whole-value writers.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

struct Triple {
  std::uint64_t a = 0, b = 0, c = 0;
  [[nodiscard]] bool consistent() const noexcept {
    return b == a + 1 && c == a + 2;
  }
};

class TmBox : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmBox,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TmBox, NoTornReadsUnderConcurrentWriters) {
  box<Triple> value(Triple{0, 1, 2});
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 3000; ++i) {
      atomically(GetParam(), [&] {
        value.store(Triple{i, i + 1, i + 2});
      });
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const Triple t =
          atomically(GetParam(), [&] { return value.load(); });
      if (!t.consistent()) torn.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_TRUE(value.load_plain().consistent());
  EXPECT_EQ(value.load_plain().a, 3000u);
}

TEST_P(TmBox, ReadModifyWriteIsAtomic) {
  box<Triple> value(Triple{0, 1, 2});
  constexpr int kThreads = 4;
  constexpr int kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        atomically(GetParam(), [&] {
          Triple v = value.load();
          ++v.a;
          v.b = v.a + 1;
          v.c = v.a + 2;
          value.store(v);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  const Triple final_value = value.load_plain();
  EXPECT_EQ(final_value.a,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_TRUE(final_value.consistent());
}

TEST(TmBoxSizes, OddSizesRoundTrip) {
  struct Odd {
    char bytes[13];
  };
  box<Odd> v;
  Odd in{};
  for (int i = 0; i < 13; ++i) in.bytes[i] = static_cast<char>('a' + i);
  atomically([&] { v.store(in); });
  const Odd out = v.load();
  for (int i = 0; i < 13; ++i) EXPECT_EQ(out.bytes[i], in.bytes[i]);
}

}  // namespace
}  // namespace tmcv::tm
