// Condition variables used from transactional contexts: the
// TMParsec+TMCondVar usage mode.  Covers CPS waits, traditional waits with
// irrevocable continuations, wait_at_commit, deferred notification
// semantics, and mixed lock/transaction interoperation.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"

namespace tmcv {
namespace {

using tm::Backend;

class CondVarTx : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override { tm::set_default_backend(Backend::EagerSTM); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, CondVarTx,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

TEST_P(CondVarTx, CpsWaitSplitsTransaction) {
  CondVar cv;
  tm::var<int> state(0);
  std::atomic<bool> cont_ran{false};
  std::thread waiter([&] {
    tm::atomically([&] {
      state.store(1);  // first half
      tm::TxnSync sync;
      cv.wait(sync, [&] {
        // Continuation: runs in its own transaction.
        EXPECT_TRUE(tm::in_txn());
        EXPECT_EQ(state.load(), 2);  // sees the notifier's update
        state.store(3);
        cont_ran.store(true);
      });
    });
    EXPECT_FALSE(tm::in_txn());
  });
  // The first half must become visible before any notify.
  while (state.load() != 1) std::this_thread::yield();
  while (cv.waiter_count() == 0) std::this_thread::yield();
  tm::atomically([&] {
    state.store(2);
    cv.notify_one();
  });
  waiter.join();
  EXPECT_TRUE(cont_ran.load());
  EXPECT_EQ(state.load(), 3);
}

TEST_P(CondVarTx, TraditionalWaitResumesIrrevocably) {
  CondVar cv;
  tm::var<int> state(0);
  std::thread waiter([&] {
    tm::atomically([&] {
      state.store(1);
      tm::TxnSync sync;
      cv.wait(sync);
      // Continuation: we are irrevocable now (§4.3).
      EXPECT_EQ(tm::descriptor().state(), tm::TxState::Serial);
      EXPECT_EQ(state.load(), 2);
      state.store(3);
    });
  });
  while (state.load() != 1) std::this_thread::yield();
  while (cv.waiter_count() == 0) std::this_thread::yield();
  tm::atomically([&] {
    state.store(2);
    cv.notify_one();
  });
  waiter.join();
  EXPECT_EQ(state.load(), 3);
}

TEST_P(CondVarTx, NotifyDeferredUntilNotifierCommits) {
  // §3.2: a NOTIFY inside a transaction must not wake anyone until the
  // outermost transaction commits -- no wake-ups from doomed transactions.
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    NoSync sync;
    cv.wait_final(sync);
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread notifier([&] {
    tm::atomically([&] {
      // Only the first attempt matters for the observation window; retries
      // are harmless because `woke` must stay false until commit anyway.
      cv.notify_one();
      inside.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!inside.load()) std::this_thread::yield();
  // The notify has executed inside the still-open transaction: the waiting
  // thread must not have been woken yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  release.store(true);
  notifier.join();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(CondVarTx, AbortedNotifyWakesNobody) {
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    NoSync sync;
    cv.wait_final(sync);
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  // A transaction that notifies and then aborts (user exception) must leave
  // the waiter asleep AND the queue unchanged (the dequeue rolled back).
  try {
    tm::atomically([&] {
      cv.notify_one();
      throw std::runtime_error("doomed");
    });
  } catch (const std::runtime_error&) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  EXPECT_EQ(cv.waiter_count(), 1u);
  // A real notify still works afterwards.
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(CondVarTx, WaitAtCommitSleepsAfterEnclosingCommit) {
  CondVar cv;
  tm::var<int> state(0);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    tm::atomically([&] {
      state.store(1);
      cv.wait_at_commit();
      // Control returns here, still inside the transaction; it must end
      // immediately (the sleep happens in the commit handler).
    });
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  // First half must have committed before the thread blocked.
  EXPECT_EQ(state.load(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(CondVarTx, WaitFinalInsideTransaction) {
  CondVar cv;
  tm::var<int> state(0);
  std::thread waiter([&] {
    tm::atomically([&] {
      state.store(1);
      tm::TxnSync sync;
      cv.wait_final(sync);  // transaction already committed; no continuation
    });
    EXPECT_FALSE(tm::in_txn());
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  EXPECT_EQ(state.load(), 1);
  cv.notify_one();
  waiter.join();
}

TEST_P(CondVarTx, MixedLockAndTransactionContexts) {
  // One waiter under a lock, one under a transaction, notifier alternating
  // contexts: the transactional queue makes every combination safe (§3.2).
  CondVar cv;
  std::mutex m;
  std::atomic<int> woke{0};
  std::thread lock_waiter([&] {
    m.lock();
    LockSync sync(m);
    cv.wait_final(sync);
    woke.fetch_add(1);
  });
  while (cv.waiter_count() < 1) std::this_thread::yield();
  std::thread txn_waiter([&] {
    tm::atomically([&] {
      tm::TxnSync sync;
      cv.wait_final(sync);
    });
    woke.fetch_add(1);
  });
  while (cv.waiter_count() < 2) std::this_thread::yield();

  // Notify once from a transaction, once from a lock-based section.
  tm::atomically([&] { cv.notify_one(); });
  {
    std::lock_guard<std::mutex> g(m);
    cv.notify_one();
  }
  lock_waiter.join();
  txn_waiter.join();
  EXPECT_EQ(woke.load(), 2);
}

TEST_P(CondVarTx, NotifyAllFromTransactionWakesAll) {
  constexpr int kWaiters = 5;
  CondVar cv;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      tm::atomically([&] {
        tm::TxnSync sync;
        cv.wait_final(sync);
      });
      woke.fetch_add(1);
    });
    while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
      std::this_thread::yield();
  }
  std::size_t notified = 0;
  tm::atomically([&] { notified = cv.notify_all(); });
  EXPECT_EQ(notified, static_cast<std::size_t>(kWaiters));
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST_P(CondVarTx, TxConditionVariableFacade) {
  tx_condition_variable cv;
  tm::var<bool> flag(false);
  std::thread waiter([&] {
    tm::atomically([&] {
      if (!flag.load()) cv.wait_tx();
      // Irrevocable continuation: flag must be true now (single notify,
      // guarded by the predicate).
      EXPECT_TRUE(flag.load());
    });
  });
  while (cv.raw().waiter_count() == 0) std::this_thread::yield();
  tm::atomically([&] {
    flag.store(true);
    cv.notify_one();
  });
  waiter.join();
  SUCCEED();
}

TEST_P(CondVarTx, RewaitFromContinuation) {
  // §3.4 "oblivious wake-ups": a woken thread whose predicate does not hold
  // re-waits.  Exercise the recursive-wait path from a continuation.
  CondVar cv;
  tm::var<int> value(0);
  std::atomic<int> wakeups{0};
  std::thread waiter([&] {
    // Refactored wait loop (what the paper's PARSEC port does).
    for (;;) {
      bool satisfied = false;
      tm::atomically([&] {
        if (value.load() >= 2) {
          satisfied = true;
          return;
        }
        tm::TxnSync sync;
        cv.wait_final(sync);
      });
      if (satisfied) break;
      wakeups.fetch_add(1);
    }
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  // First notify: predicate still false -> thread re-waits.
  tm::atomically([&] {
    value.store(1);
    cv.notify_one();
  });
  while (wakeups.load() < 1) std::this_thread::yield();
  while (cv.waiter_count() == 0) std::this_thread::yield();
  tm::atomically([&] {
    value.store(2);
    cv.notify_one();
  });
  waiter.join();
  EXPECT_GE(wakeups.load(), 1);
  EXPECT_EQ(value.load(), 2);
}

}  // namespace
}  // namespace tmcv
