// Fast-path engineering tests: read-set dedup (including orec aliasing),
// the redo log's scan-then-index lookups across rehash, and the allocation-free
// batched wakeup path (notify-all inside an aborted transaction must post
// nothing; a committed notify-all of N waiters must register zero onCommit
// handlers).
#include <gtest/gtest.h>

#include "backend_fixture.h"  // orec/HTM-specific: pin the eager default

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/condvar.h"
#include "tm/api.h"
#include "tm/orec.h"
#include "tm/stats.h"
#include "tm/var.h"

namespace tmcv {
namespace {

using tm::Backend;
using tm::Stats;

std::uint64_t orec_index(const tm::var<std::uint64_t>& v) {
  return static_cast<std::uint64_t>(&tm::orec_for(v.word()) -
                                    &tm::orec_at(0));
}

// Repeated reads of one stripe collapse to a single read-set entry.
TEST(TmFastPath, DedupRepeatedReads) {
  tm::var<std::uint64_t> x(7);
  tm::stats_reset();
  std::uint64_t sum = 0;
  tm::atomically(Backend::EagerSTM, [&] {
    sum = 0;
    for (int i = 0; i < 100; ++i) sum += x.load();
  });
  EXPECT_EQ(sum, 700u);
  const Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.read_dedup_appends, 1u);
  EXPECT_EQ(s.read_dedup_hits, 99u);
  EXPECT_DOUBLE_EQ(s.dedup_hit_rate(), 0.99);
}

// Two distinct variables striped onto the SAME orec: the filter treats them
// as one stripe (dedup keys on the orec, which is exactly the granularity
// validation runs at), and both values must still read and commit correctly.
TEST(TmFastPath, DedupUnderOrecAliasing) {
  // Pigeonhole over the orec table guarantees a collision well before
  // kOrecCount allocations; in practice a few hundred suffice (birthday).
  std::vector<std::unique_ptr<tm::var<std::uint64_t>>> vars;
  std::unordered_map<std::uint64_t, tm::var<std::uint64_t>*> by_orec;
  tm::var<std::uint64_t>* a = nullptr;
  tm::var<std::uint64_t>* b = nullptr;
  for (std::uint64_t i = 0; i < tm::kOrecCount + 1 && b == nullptr; ++i) {
    vars.push_back(std::make_unique<tm::var<std::uint64_t>>(i));
    auto [it, fresh] = by_orec.emplace(orec_index(*vars.back()), vars.back().get());
    if (!fresh) {
      a = it->second;
      b = vars.back().get();
    }
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(orec_index(*a), orec_index(*b));

  tm::atomically(Backend::EagerSTM, [&] {
    a->store(111);
    b->store(222);
  });
  tm::stats_reset();
  std::uint64_t va = 0, vb = 0;
  tm::atomically(Backend::EagerSTM, [&] {
    va = vb = 0;
    for (int i = 0; i < 10; ++i) {
      va += a->load();
      vb += b->load();
    }
  });
  EXPECT_EQ(va, 1110u);
  EXPECT_EQ(vb, 2220u);
  const Stats s = tm::stats_snapshot();
  // One aliased stripe: a single append covers both variables, every other
  // read is a filter hit.
  EXPECT_EQ(s.read_dedup_appends, 1u);
  EXPECT_EQ(s.read_dedup_hits, 19u);
}

// Two stripes that collide in the dedup FILTER (same direct-mapped slot,
// different orecs) must still read correctly: a filter conflict only costs
// duplicate read-set entries, never correctness.
TEST(TmFastPath, FilterSlotCollisionIsBenign) {
  // kReadFilterSlots is 512, so any two vars whose orec indexes are equal
  // mod 512 (but unequal) share a filter slot.
  std::vector<std::unique_ptr<tm::var<std::uint64_t>>> vars;
  std::unordered_map<std::uint64_t, tm::var<std::uint64_t>*> by_slot;
  tm::var<std::uint64_t>* a = nullptr;
  tm::var<std::uint64_t>* b = nullptr;
  for (std::uint64_t i = 0; i < tm::kOrecCount + 1 && b == nullptr; ++i) {
    vars.push_back(std::make_unique<tm::var<std::uint64_t>>(0));
    const std::uint64_t idx = orec_index(*vars.back());
    auto [it, fresh] = by_slot.emplace(idx % 512, vars.back().get());
    if (!fresh && orec_index(*it->second) != idx) {
      a = it->second;
      b = vars.back().get();
    }
  }
  ASSERT_NE(a, nullptr);
  tm::atomically(Backend::EagerSTM, [&] {
    a->store(5);
    b->store(9);
  });
  std::uint64_t sum = 0;
  tm::atomically(Backend::EagerSTM, [&] {
    sum = 0;
    // Alternating reads evict each other from the shared slot every time.
    for (int i = 0; i < 50; ++i) sum += a->load() + b->load();
  });
  EXPECT_EQ(sum, 700u);
}

class TmFastPathBackends : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(EagerAndLazy, TmFastPathBackends,
                         ::testing::Values(Backend::EagerSTM,
                                           Backend::LazySTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

// Read-after-write must stay exact while the redo log grows past the
// linear-scan threshold and its hash index grows through multiple rehashes
// (the index starts at 64 slots and rehashes at 3/4 load, so 200 distinct
// writes force several).  EagerSTM writes through memory and keeps no
// write index at all, so it must report zero rehashes.
TEST_P(TmFastPathBackends, LogIndexReadAfterWriteAcrossRehash) {
  constexpr int kVars = 200;
  std::vector<std::unique_ptr<tm::var<std::uint64_t>>> vars;
  for (int i = 0; i < kVars; ++i)
    vars.push_back(std::make_unique<tm::var<std::uint64_t>>(0));
  tm::stats_reset();
  bool ok = false;
  tm::atomically(GetParam(), [&] {
    ok = true;
    for (int i = 0; i < kVars; ++i) vars[i]->store(i * 3 + 1);
    // Read back through the redo log (LazySTM) / write-through (EagerSTM):
    // every lookup must find the latest value, including entries inserted
    // before the last rehash.
    for (int i = 0; i < kVars; ++i)
      ok = ok && vars[i]->load() == static_cast<std::uint64_t>(i * 3 + 1);
    // Overwrite a prefix and re-check: the index must return the updated
    // log entries, not stale ones.
    for (int i = 0; i < 32; ++i) vars[i]->store(i);
    for (int i = 0; i < 32; ++i)
      ok = ok && vars[i]->load() == static_cast<std::uint64_t>(i);
  });
  EXPECT_TRUE(ok);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(vars[i]->load(), static_cast<std::uint64_t>(i));
  for (int i = 32; i < kVars; ++i)
    EXPECT_EQ(vars[i]->load(), static_cast<std::uint64_t>(i * 3 + 1));
  const Stats s = tm::stats_snapshot();
  if (GetParam() == Backend::LazySTM) {
    EXPECT_GE(s.log_index_rehashes, 1u);
  } else {
    EXPECT_EQ(s.log_index_rehashes, 0u);
  }
}

// NOTIFYALL inside a transaction that aborts must post no semaphore: the
// wake batch is discarded with the rollback, the queue is restored, and no
// waiter runs early (Algorithm 6's no-escaping-wakeups requirement).  A
// committed notify-all of 32 waiters must do it with ZERO deferred
// onCommit handler allocations (the wake batch replaces them) and one
// coalesced batch flush.
TEST_P(TmFastPathBackends, NotifyAllInAbortedTxnPostsNothing) {
  constexpr int kWaiters = 32;
  tm::set_default_backend(GetParam());
  CondVar cv;
  std::mutex m;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      m.lock();
      LockSync sync(m);
      cv.wait_final(sync);
      woke.fetch_add(1);
    });
  }
  while (cv.waiter_count() < kWaiters) std::this_thread::yield();

  tm::stats_reset();
  bool aborted_once = false;
  std::size_t notified = 0;
  tm::atomically([&] {
    notified = cv.notify_all();
    if (!aborted_once) {
      aborted_once = true;
      tm::retry_txn();  // explicit abort: the attempt rolls back
    }
  });
  EXPECT_TRUE(aborted_once);
  EXPECT_EQ(notified, static_cast<std::size_t>(kWaiters));

  // Both attempts queued kWaiters deferred wakes, but only the committed
  // one flushed a batch; no onCommit handler was ever allocated.
  const Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.deferred_wakes, static_cast<std::uint64_t>(2 * kWaiters));
  EXPECT_EQ(s.wake_batches, 1u);
  EXPECT_EQ(s.handlers_registered, 0u);

  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
  EXPECT_EQ(cv.waiter_count(), 0u);
  tm::set_default_backend(Backend::EagerSTM);
}

// The abort path alone: waiters must still be parked (queue intact, no
// posts) after a transaction that notified and then aborted for good.
TEST(TmFastPath, AbortDiscardsWakeBatchQueueIntact) {
  constexpr int kWaiters = 4;
  CondVar cv;
  std::mutex m;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      m.lock();
      LockSync sync(m);
      cv.wait_final(sync);
      woke.fetch_add(1);
    });
  }
  while (cv.waiter_count() < kWaiters) std::this_thread::yield();

  tm::stats_reset();
  bool aborted_once = false;
  tm::atomically(Backend::EagerSTM, [&] {
    if (!aborted_once) {
      cv.notify_all();
      aborted_once = true;
      tm::retry_txn();
    }
    // Committed attempt leaves the queue alone.
  });
  // The aborted notify must not have released anyone, and the rollback must
  // have restored the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(woke.load(), 0);
  EXPECT_EQ(cv.waiter_count(), static_cast<std::size_t>(kWaiters));
  EXPECT_EQ(tm::stats_snapshot().wake_batches, 0u);

  cv.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

}  // namespace
}  // namespace tmcv
