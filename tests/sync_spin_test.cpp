// Adaptive spin-then-park: the SpinControl predictor, the process-wide
// budget knob, the adaptive_spin helper, and the semaphore slow-path
// integration (park -> wake -> token consumed exactly once).  The
// interleaving-dependent property (post mid-spin avoids the park) is model-
// checked exhaustively in sched_explorer_test.cpp; here we pin the
// deterministic pieces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "sync/semaphore.h"
#include "sync/spin.h"
#include "util/cpu.h"
#include "sync/wake_stats.h"

namespace tmcv {
namespace {

// Restore the global budget after each test so ordering can't leak.
class SpinBudgetGuard {
 public:
  SpinBudgetGuard() : saved_(spin_budget()) {}
  ~SpinBudgetGuard() { set_spin_budget(saved_); }

 private:
  unsigned saved_;
};

TEST(SpinControl, EwmaConvergesUpOnSuccessAndDownOnFailure) {
  detail::SpinControl ctl;
  EXPECT_EQ(ctl.ewma, 128u);  // starts undecided
  for (int i = 0; i < 64; ++i) ctl.record(true);
  EXPECT_EQ(ctl.ewma, 256u);  // success fixed point
  EXPECT_EQ(ctl.effective_rounds(16), 16u);  // full budget
  for (int i = 0; i < 64; ++i) ctl.record(false);
  // Failure fixed point: integer division floors the decay once ewma/8 == 0,
  // so the EWMA settles at <= 7 rather than exactly 0.
  EXPECT_LE(ctl.ewma, 7u);
  // Floor of one round: a park-always thread keeps probing so it can
  // recover when the workload turns ping-pongy.
  EXPECT_EQ(ctl.effective_rounds(16), 1u);
  const unsigned floor = ctl.ewma;
  ctl.record(true);
  EXPECT_GT(ctl.ewma, floor);  // and recovery is possible
}

TEST(SpinControl, EffectiveRoundsScalesWithHistory) {
  detail::SpinControl ctl;  // ewma = 128: half confidence
  EXPECT_EQ(ctl.effective_rounds(16), 8u);
  EXPECT_EQ(ctl.effective_rounds(0), 0u);  // budget 0 always wins
  ctl.ewma = 1;                            // tiny but nonzero history
  EXPECT_EQ(ctl.effective_rounds(16), 1u);  // floored, not zeroed
}

TEST(SpinBudget, KnobRoundTrips) {
  SpinBudgetGuard guard;
  set_spin_budget(3);
  EXPECT_EQ(spin_budget(), 3u);
  set_spin_budget(0);
  EXPECT_EQ(spin_budget(), 0u);
}

TEST(AdaptiveSpin, ZeroBudgetSkipsTheSpinEntirely) {
  SpinBudgetGuard guard;
  set_spin_budget(0);
  const WakeStats before = wake_stats_snapshot();
  int probes = 0;
  EXPECT_FALSE(adaptive_spin([&]() noexcept {
    ++probes;
    return true;  // would succeed instantly -- must not even be asked
  }));
  EXPECT_EQ(probes, 0);
  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.spin_attempts, before.spin_attempts);
}

TEST(AdaptiveSpin, ReadyMidSpinReturnsTrueAndCounts) {
  SpinBudgetGuard guard;
  set_spin_budget(64);
  // Rebuild per-thread confidence so the budget is not floored by earlier
  // tests on this thread.
  for (int i = 0; i < 64; ++i) detail::my_spin_control().record(true);
  const WakeStats before = wake_stats_snapshot();
  int probes = 0;
  EXPECT_TRUE(adaptive_spin([&]() noexcept { return ++probes >= 3; }));
  EXPECT_EQ(probes, 3);
  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.spin_attempts - before.spin_attempts, 1u);
  EXPECT_EQ(after.spin_rounds - before.spin_rounds, 2u);  // 2 failed probes
}

TEST(AdaptiveSpin, BudgetExhaustionReturnsFalse) {
  SpinBudgetGuard guard;
  set_spin_budget(4);
  EXPECT_FALSE(adaptive_spin([]() noexcept { return false; }));
}

TEST(BinarySemaphore, ParkWakeConsumesTokenExactlyOnce) {
  SpinBudgetGuard guard;
  set_spin_budget(0);  // force the pure park path deterministically
  BinarySemaphore sem;
  const WakeStats before = wake_stats_snapshot();
  std::thread waiter([&] { sem.wait(); });
  sem.post();
  waiter.join();
  // Exactly one token moved: the semaphore is empty again.
  EXPECT_FALSE(sem.try_wait());
  const WakeStats after = wake_stats_snapshot();
  // The waiter either parked (slow path) or won the fast-path race; it can
  // never have recorded a park-avoidance with spinning disabled.
  EXPECT_EQ(after.parks_avoided, before.parks_avoided);
}

TEST(BinarySemaphore, SlowPathWithSpinStillConservesTheToken) {
  SpinBudgetGuard guard;
  set_spin_budget(32);
  BinarySemaphore sem;
  std::thread waiter([&] { sem.wait(); });
  sem.post();
  waiter.join();
  EXPECT_FALSE(sem.try_wait());
  sem.post();
  EXPECT_TRUE(sem.try_wait());  // and the primitive still round-trips
}

TEST(CountingSemaphore, SpinPathPreservesCount) {
  SpinBudgetGuard guard;
  set_spin_budget(32);
  Semaphore sem(0);
  std::thread waiter([&] {
    sem.wait();
    sem.wait();
  });
  sem.post();
  sem.post();
  waiter.join();
  EXPECT_EQ(sem.value(), 0u);
}

TEST(WakeStats, SnapshotAndResetCoverEveryField) {
  // for_each_field, +=, -= and the snapshot/reset pair stay in sync.
  WakeStats a;
  std::size_t fields = 0;
  WakeStats::for_each_field([&](const char* name, std::uint64_t WakeStats::*f) {
    EXPECT_NE(name, nullptr);
    a.*f = ++fields;  // distinct values
  });
  EXPECT_EQ(fields, 6u);
  WakeStats b = a;
  b += a;
  b -= a;
  WakeStats::for_each_field([&](const char*, std::uint64_t WakeStats::*f) {
    EXPECT_EQ(b.*f, a.*f);
  });
}

// ---- 1-core default (the PR-4 pingpong-regression mitigation) ----

TEST(SpinBudget, DefaultIsZeroOnOneCpu) {
  // On a single effective CPU, spinning before park only burns the quantum
  // the lock holder (or notifier) needs: the default must be pure parking.
  EXPECT_EQ(default_spin_budget(1, false), 0u);
}

TEST(SpinBudget, DefaultIsPositiveOnMultiCpu) {
  EXPECT_GT(default_spin_budget(2, false), 0u);
  EXPECT_GT(default_spin_budget(8, false), 0u);
}

TEST(SpinBudget, NoSpinKnobForcesZeroRegardlessOfCpus) {
  EXPECT_EQ(default_spin_budget(1, true), 0u);
  EXPECT_EQ(default_spin_budget(64, true), 0u);
}

TEST(SpinBudget, DefaultAgreesWithThisMachinesTopology) {
  // The regression this guards: on a 1-core box (this CI container) the
  // default must come up 0 -- a waiter spinning before park steals the
  // exact quantum its notifier needs.  set_spin_budget / TMCV_NO_SPIN
  // remain the explicit overrides.
  const unsigned def = default_spin_budget(effective_cpus(), false);
  if (effective_cpus() <= 1)
    EXPECT_EQ(def, 0u);
  else
    EXPECT_GT(def, 0u);
}

}  // namespace
}  // namespace tmcv
