// Unit and stress tests for futex-based semaphores (the paper's sem_t
// substrate) and the futex wrapper itself.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/futex.h"
#include "sync/semaphore.h"

namespace tmcv {
namespace {

TEST(Futex, WakeWithNoWaitersReturnsZero) {
  std::atomic<std::uint32_t> word{0};
  EXPECT_EQ(futex_wake(&word, 1), 0);
}

TEST(Futex, WaitReturnsImmediatelyOnValueMismatch) {
  std::atomic<std::uint32_t> word{5};
  futex_wait(&word, 4);  // must not block
  SUCCEED();
}

TEST(Semaphore, InitialValue) {
  Semaphore s(3);
  EXPECT_EQ(s.value(), 3u);
  s.wait();
  s.wait();
  EXPECT_EQ(s.value(), 1u);
}

TEST(Semaphore, TryWaitFailsAtZero) {
  Semaphore s(1);
  EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(Semaphore, PostThenWaitDoesNotBlock) {
  Semaphore s;
  s.post();
  s.wait();
  EXPECT_EQ(s.value(), 0u);
}

TEST(Semaphore, PostNProducesNTokens) {
  Semaphore s;
  s.post(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(s.try_wait());
  EXPECT_FALSE(s.try_wait());
}

TEST(Semaphore, WakesBlockedWaiter) {
  Semaphore s;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    s.wait();
    woke.store(true);
  });
  // Give the waiter a chance to block, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  s.post();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(Semaphore, TokensAreConserved) {
  // Conservation is the property the condvar proofs rely on: total waits
  // completed == total posts consumed, across arbitrary interleavings.
  constexpr int kThreads = 4;
  constexpr int kTokensPerThread = 2000;
  Semaphore s;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    consumers.emplace_back([&] {
      for (int i = 0; i < kTokensPerThread; ++i) {
        s.wait();
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread producer([&] {
    for (int i = 0; i < kThreads * kTokensPerThread; ++i) s.post();
  });
  producer.join();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(consumed.load(), kThreads * kTokensPerThread);
  EXPECT_EQ(s.value(), 0u);
}

TEST(BinarySemaphore, StartsUnsignaledByDefault) {
  BinarySemaphore b;
  EXPECT_FALSE(b.signaled());
  EXPECT_FALSE(b.try_wait());
}

TEST(BinarySemaphore, PostIsIdempotent) {
  BinarySemaphore b;
  b.post();
  b.post();
  b.post();
  EXPECT_TRUE(b.try_wait());
  // The clamp means only one token exists no matter how many posts landed.
  EXPECT_FALSE(b.try_wait());
}

TEST(BinarySemaphore, PostBeforeWaitSticks) {
  // The lost-wakeup immunity of the condvar depends on this: a post landing
  // before the owner blocks must satisfy the subsequent wait.
  BinarySemaphore b;
  b.post();
  b.wait();  // must not block
  EXPECT_FALSE(b.signaled());
}

TEST(BinarySemaphore, WakesBlockedWaiter) {
  BinarySemaphore b;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    b.wait();
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  b.post();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(Futex, WaitForTimesOut) {
  std::atomic<std::uint32_t> word{0};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(futex_wait_for(&word, 0, 20'000'000));  // 20 ms
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(Futex, WaitForReturnsOnValueMismatch) {
  std::atomic<std::uint32_t> word{7};
  EXPECT_TRUE(futex_wait_for(&word, 6, 1'000'000'000));  // immediate
}

TEST(Semaphore, WaitForTimesOutWithoutToken) {
  Semaphore s;
  EXPECT_FALSE(s.wait_for(10'000'000));  // 10 ms
  EXPECT_EQ(s.value(), 0u);
}

TEST(Semaphore, WaitForConsumesAvailableToken) {
  Semaphore s(1);
  EXPECT_TRUE(s.wait_for(1'000'000'000));
  EXPECT_EQ(s.value(), 0u);
}

TEST(Semaphore, WaitForWokenByPost) {
  Semaphore s;
  std::atomic<bool> got{false};
  std::thread waiter([&] { got.store(s.wait_for(10'000'000'000ull)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  s.post();
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(BinarySemaphore, WaitForTimesOutAndSucceeds) {
  BinarySemaphore b;
  EXPECT_FALSE(b.wait_for(5'000'000));  // 5 ms, no token
  b.post();
  EXPECT_TRUE(b.wait_for(5'000'000));  // token present
  EXPECT_FALSE(b.signaled());
}

TEST(BinarySemaphore, PingPong) {
  // Two threads alternating strictly via two binary semaphores.
  BinarySemaphore ping, pong;
  constexpr int kRounds = 5000;
  int sequence_errors = 0;
  int turn = 0;  // written alternately, read by both under the semaphores
  std::thread a([&] {
    for (int i = 0; i < kRounds; ++i) {
      ping.wait();
      if (turn != 0) ++sequence_errors;
      turn = 1;
      pong.post();
    }
  });
  std::thread b([&] {
    for (int i = 0; i < kRounds; ++i) {
      pong.wait();
      if (turn != 1) ++sequence_errors;
      turn = 0;
      ping.post();
    }
  });
  ping.post();  // start the game
  a.join();
  b.join();
  EXPECT_EQ(sequence_errors, 0);
}

}  // namespace
}  // namespace tmcv
