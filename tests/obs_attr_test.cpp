// Conflict-attribution tests: key packing, site interning, the sharded
// lock-free counter table, and the end-to-end completeness contract (pair
// counts sum to aborts_conflict over the same measurement window).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/attribution.h"
#include "obs/trace.h"
#include "tm/api.h"
#include "tm/var.h"

namespace obs = tmcv::obs;


namespace {

class ObsAttrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_attribution_enabled(false);
    obs::attr_reset();
  }
  void TearDown() override {
    obs::set_attribution_enabled(false);
    obs::attr_reset();
  }
};

TEST_F(ObsAttrTest, KeyPackingRoundTrips) {
  const std::uint64_t sr =
      obs::attr_pack_site_reason(42, obs::kAttrReasonCapacity);
  EXPECT_NE(sr, 0u);  // the tag bit keeps every key nonzero
  EXPECT_EQ(obs::attr_key_site(sr), 42);
  EXPECT_EQ(obs::attr_key_reason(sr), obs::kAttrReasonCapacity);

  const std::uint64_t pr =
      obs::attr_pack_pair(7, 9, obs::kAttrReasonConflict);
  EXPECT_NE(pr, 0u);
  EXPECT_EQ(obs::attr_pair_victim(pr), 7);
  EXPECT_EQ(obs::attr_pair_attacker(pr), 9);
  EXPECT_EQ(obs::attr_key_reason(pr), obs::kAttrReasonConflict);

  const std::uint64_t st = obs::attr_pack_stripe(12345);
  EXPECT_NE(st, 0u);
  EXPECT_EQ(obs::attr_stripe_index(st), 12345u);
}

TEST_F(ObsAttrTest, SiteInterningIsIdempotentByContent) {
  const std::uint16_t a = obs::intern_site("attr_test.alpha");
  const std::uint16_t b = obs::intern_site("attr_test.beta");
  EXPECT_NE(a, obs::kUnattributedSite);
  EXPECT_NE(b, obs::kUnattributedSite);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::intern_site("attr_test.alpha"), a);
  // Dedup is by content, not pointer: a transient buffer with the same
  // characters resolves to the existing id (and is never stored).
  const std::string alpha_copy = "attr_test.alpha";
  EXPECT_EQ(obs::intern_site(alpha_copy.c_str()), a);
  EXPECT_STREQ(obs::site_name(a), "attr_test.alpha");
  EXPECT_STREQ(obs::site_name(obs::kUnattributedSite), "(unattributed)");
  // Out-of-range ids degrade to the unattributed name, never UB.
  EXPECT_STREQ(obs::site_name(0xfffe), "(unattributed)");
}

TEST_F(ObsAttrTest, TableCountsFoldAndOverflowIsCounted) {
  obs::AttrTable<2> t;  // 4 slots per shard: small enough to overflow
  const std::uint64_t k1 = obs::kAttrKeyTag | 1;
  t.add(k1, 2);
  t.add(k1, 3);
  std::size_t entries = 0;
  std::uint64_t count1 = 0;
  t.for_each([&](std::uint64_t k, std::uint64_t c) {
    ++entries;
    if (k == k1) count1 = c;
  });
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(count1, 5u);
  EXPECT_EQ(t.overflow(), 0u);

  // Fill this thread's shard (all adds from one thread land in one shard),
  // then overflow it: the excess is counted, not silently dropped.
  t.add(obs::kAttrKeyTag | 2);
  t.add(obs::kAttrKeyTag | 3);
  t.add(obs::kAttrKeyTag | 4);
  t.add(obs::kAttrKeyTag | 5, 7);
  EXPECT_EQ(t.overflow(), 7u);
  t.add(k1, 1);  // existing keys still count while the shard is full
  count1 = 0;
  t.for_each([&](std::uint64_t k, std::uint64_t c) {
    if (k == k1) count1 = c;
  });
  EXPECT_EQ(count1, 6u);

  t.reset();
  entries = 0;
  t.for_each([&](std::uint64_t, std::uint64_t) { ++entries; });
  EXPECT_EQ(entries, 0u);
  EXPECT_EQ(t.overflow(), 0u);
}

TEST_F(ObsAttrTest, ShardReplicasSumAcrossThreads) {
  obs::AttrTable<4> t;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  const std::uint64_t key = obs::kAttrKeyTag | 77;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      for (int n = 0; n < kAdds; ++n) t.add(key);
    });
  for (auto& th : threads) th.join();
  // The key may live in several shards (one per recording thread's shard);
  // the replica counts must sum to the true total.
  std::uint64_t total = 0;
  t.for_each([&](std::uint64_t k, std::uint64_t c) {
    EXPECT_EQ(k, key);
    total += c;
  });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kAdds);
  EXPECT_EQ(t.overflow(), 0u);
}

TEST_F(ObsAttrTest, RecordingIsGatedByRuntimeFlag) {
  obs::attr_record_abort(1, obs::kAttrReasonConflict);
  obs::attr_record_conflict(1, 2, 3);
  obs::attr_record_escalation(1);
  obs::AttributionSnapshot s = obs::attribution_snapshot();
  EXPECT_TRUE(s.abort_sites.empty());
  EXPECT_TRUE(s.conflict_pairs.empty());
  EXPECT_TRUE(s.hot_stripes.empty());

  obs::set_attribution_enabled(true);
  obs::attr_record_conflict(1, 2, 3);
  obs::set_attribution_enabled(false);
  s = obs::attribution_snapshot();
  ASSERT_EQ(s.conflict_pairs.size(), 1u);
  EXPECT_EQ(obs::attr_pair_victim(s.conflict_pairs[0].key), 1);
  EXPECT_EQ(obs::attr_pair_attacker(s.conflict_pairs[0].key), 2);
  EXPECT_EQ(s.conflict_pairs[0].count, 1u);
  ASSERT_EQ(s.hot_stripes.size(), 1u);
  EXPECT_EQ(obs::attr_stripe_index(s.hot_stripes[0].key), 3u);
  EXPECT_EQ(obs::attr_conflicts_total(s), 1u);
}

TEST_F(ObsAttrTest, DeltaSubtractsByKey) {
  obs::set_attribution_enabled(true);
  obs::attr_record_conflict(1, 2, 5);
  obs::attr_record_conflict(1, 2, 5);
  const obs::AttributionSnapshot before = obs::attribution_snapshot();
  obs::attr_record_conflict(1, 2, 5);
  obs::attr_record_conflict(3, 4, 6);
  obs::set_attribution_enabled(false);
  const obs::AttributionSnapshot now = obs::attribution_snapshot();
  const obs::AttributionSnapshot d = obs::attribution_delta(now, before);
  EXPECT_EQ(obs::attr_conflicts_total(d), 2u);
  std::uint64_t pair12 = 0, pair34 = 0;
  for (const obs::AttrEntry& e : d.conflict_pairs) {
    if (obs::attr_pair_victim(e.key) == 1) pair12 = e.count;
    if (obs::attr_pair_victim(e.key) == 3) pair34 = e.count;
  }
  EXPECT_EQ(pair12, 1u);
  EXPECT_EQ(pair34, 1u);
}

// The completeness contract end-to-end: hammer one variable from several
// threads with attribution on; every conflict abort must land in the pair
// table, so the pair counts sum EXACTLY to aborts_conflict (unknown
// attackers fall back to site 0 rather than being skipped), and the
// per-reason abort-site counts mirror the tmcv::tm::Stats reason counters.
TEST_F(ObsAttrTest, ConflictPairsSumToAbortsConflict) {
  tmcv::tm::stats_reset();
  obs::attr_reset();
  obs::set_attribution_enabled(true);

  tmcv::tm::var<std::uint64_t> hot(0);
  constexpr int kThreads = 4;
  constexpr int kTxns = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kTxns; ++i)
        tmcv::tm::atomically([&] {
          TMCV_TXN_SITE("attr_test.hot_rmw");
          hot.store(hot.load() + 1);
        });
    });
  for (auto& th : threads) th.join();
  obs::set_attribution_enabled(false);

  std::uint64_t sum = 0;
  tmcv::tm::atomically([&] { sum = hot.load(); });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * kTxns);

  const tmcv::tm::Stats st = tmcv::tm::stats_snapshot();
  const obs::AttributionSnapshot snap = obs::attribution_snapshot();
  EXPECT_EQ(snap.dropped, 0u);
#if TMCV_TRACE
  EXPECT_EQ(obs::attr_conflicts_total(snap), st.aborts_conflict);
  std::uint64_t by_reason[6] = {};
  for (const obs::AttrEntry& e : snap.abort_sites) {
    const std::uint16_t r = obs::attr_key_reason(e.key);
    ASSERT_LT(r, 6u);
    by_reason[r] += e.count;
  }
  EXPECT_EQ(by_reason[obs::kAttrReasonConflict], st.aborts_conflict);
  EXPECT_EQ(by_reason[obs::kAttrReasonCapacity], st.aborts_capacity);
  EXPECT_EQ(by_reason[obs::kAttrReasonSyscall], st.aborts_syscall);
  EXPECT_EQ(by_reason[obs::kAttrReasonExplicit], st.aborts_explicit);
  EXPECT_EQ(by_reason[obs::kAttrReasonRetryWait], st.aborts_retry_wait);
  if (st.aborts_conflict > 0) {
    bool victim_labeled = false;
    for (const obs::AttrEntry& e : snap.conflict_pairs)
      if (std::string(obs::site_name(obs::attr_pair_victim(e.key))) ==
          "attr_test.hot_rmw")
        victim_labeled = true;
    EXPECT_TRUE(victim_labeled)
        << "no conflict pair names the labeled victim site";
  }
#else
  // Hooks compiled out: nothing must have been recorded.
  EXPECT_EQ(obs::attr_conflicts_total(snap), 0u);
#endif
}

}  // namespace
