// Multi-threaded correctness of the TM runtime: atomicity, isolation,
// conservation invariants, and serial-mode interaction, on every backend.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

class TmConcurrent : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmConcurrent,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TmConcurrent, CounterHasNoLostUpdates) {
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  var<long> counter(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        atomically(GetParam(), [&] { counter.store(counter.load() + 1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kIters);
}

TEST_P(TmConcurrent, BankTransfersConserveTotal) {
  // Classic isolation test: concurrent transfers between accounts must
  // never create or destroy money, and every observer snapshot must see the
  // invariant total.
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kTransfers = 2000;
  constexpr long kInitial = 1000;
  tm::array<long, kAccounts> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts[i].store_plain(kInitial);

  std::atomic<int> bad_snapshots{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kTransfers; ++i) {
        const auto from = rng.next_below(kAccounts);
        const auto to = rng.next_below(kAccounts);
        const long amount = static_cast<long>(rng.next_below(50));
        atomically(GetParam(), [&] {
          accounts[from].store(accounts[from].load() - amount);
          accounts[to].store(accounts[to].load() + amount);
        });
        if (i % 100 == 0) {
          // Observer transaction: a full-sweep snapshot must balance.
          const long total = atomically(GetParam(), [&] {
            long sum = 0;
            for (int a = 0; a < kAccounts; ++a) sum += accounts[a].load();
            return sum;
          });
          if (total != kAccounts * kInitial) bad_snapshots.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  long total = 0;
  for (int a = 0; a < kAccounts; ++a) total += accounts[a].load();
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_EQ(bad_snapshots.load(), 0);
}

TEST_P(TmConcurrent, WriteSkewPrevented) {
  // x + y <= 1 invariant: each txn reads both and writes one; a serializable
  // TM must not allow both writers to succeed from the same snapshot.
  var<int> x(0), y(0);
  constexpr int kRounds = 500;
  int violations = 0;
  for (int round = 0; round < kRounds; ++round) {
    x.store_plain(0);
    y.store_plain(0);
    std::thread a([&] {
      atomically(GetParam(), [&] {
        if (x.load() + y.load() < 1) y.store(y.load() + 1);
      });
    });
    std::thread b([&] {
      atomically(GetParam(), [&] {
        if (x.load() + y.load() < 1) x.store(x.load() + 1);
      });
    });
    a.join();
    b.join();
    if (x.load() + y.load() > 1) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST_P(TmConcurrent, IrrevocableExcludesOptimistic) {
  // While an irrevocable section runs, no optimistic transaction commits:
  // the serial section increments a plain (uninstrumented) counter pair and
  // optimistic observers must never see it torn.
  var<long> a(0), b(0);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread serial_thread([&] {
    for (int i = 0; i < 300; ++i) {
      irrevocably([&] {
        a.store(a.load() + 1);
        b.store(b.load() + 1);
      });
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto pair = atomically(GetParam(), [&] {
          return std::pair<long, long>(a.load(), b.load());
        });
        if (pair.first != pair.second) torn.fetch_add(1);
      }
    });
  }
  serial_thread.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(a.load(), 300);
  EXPECT_EQ(b.load(), 300);
}

TEST_P(TmConcurrent, OnCommitHandlersFireExactlyOncePerCommit) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  var<long> x(0);
  std::atomic<long> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        atomically(GetParam(), [&] {
          x.store(x.load() + 1);
          on_commit([&] { fired.fetch_add(1); });
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  // Retried attempts discard their handlers; only real commits fire.
  EXPECT_EQ(fired.load(), static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(x.load(), static_cast<long>(kThreads) * kIters);
}

TEST_P(TmConcurrent, DisjointWritesDoNotConflictSemantically) {
  // Threads write disjoint vars; all writes must land (aborts may occur from
  // orec aliasing but retries must resolve them).
  constexpr int kThreads = 4;
  constexpr int kVarsPerThread = 64;
  std::vector<std::unique_ptr<var<int>>> vars;
  for (int i = 0; i < kThreads * kVarsPerThread; ++i)
    vars.push_back(std::make_unique<var<int>>(0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kVarsPerThread; ++i) {
        atomically(GetParam(),
                   [&] { vars[t * kVarsPerThread + i]->store(t + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kVarsPerThread; ++i)
      EXPECT_EQ(vars[t * kVarsPerThread + i]->load(), t + 1);
}

TEST(TmConcurrentMixed, BackendsInteroperateOnSharedData) {
  // Different threads using different optimistic backends against the same
  // orec table must still serialize correctly.
  var<long> counter(0);
  constexpr int kIters = 2000;
  std::thread eager([&] {
    for (int i = 0; i < kIters; ++i)
      atomically(Backend::EagerSTM,
                 [&] { counter.store(counter.load() + 1); });
  });
  std::thread lazy([&] {
    for (int i = 0; i < kIters; ++i)
      atomically(Backend::LazySTM, [&] { counter.store(counter.load() + 1); });
  });
  std::thread htm([&] {
    for (int i = 0; i < kIters; ++i)
      atomically(Backend::HTM, [&] { counter.store(counter.load() + 1); });
  });
  eager.join();
  lazy.join();
  htm.join();
  EXPECT_EQ(counter.load(), 3L * kIters);
}

}  // namespace
}  // namespace tmcv::tm
