// Transactional data structures: sequential semantics, composability with
// ambient transactions (including rollback), and concurrent conservation
// properties on every backend.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tmds/tx_hashmap.h"
#include "tmds/tx_queue.h"
#include "tmds/tx_stack.h"

namespace tmcv::tmds {
namespace {

using tm::Backend;

class TmdsBackends : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override { tm::set_default_backend(Backend::EagerSTM); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmdsBackends,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

// ---- TxStack ----

TEST_P(TmdsBackends, StackLifoOrder) {
  TxStack<int> stack;
  EXPECT_TRUE(stack.empty());
  for (int i = 1; i <= 5; ++i) stack.push(i);
  EXPECT_EQ(stack.size(), 5u);
  int v = 0;
  EXPECT_TRUE(stack.peek(v));
  EXPECT_EQ(v, 5);
  for (int i = 5; i >= 1; --i) {
    EXPECT_TRUE(stack.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(stack.pop(v));
  EXPECT_TRUE(stack.empty());
}

TEST_P(TmdsBackends, StackComposesWithAbortingTransaction) {
  TxStack<int> stack;
  stack.push(1);
  try {
    tm::atomically([&] {
      stack.push(2);
      int v = 0;
      EXPECT_TRUE(stack.pop(v));
      EXPECT_EQ(v, 2);
      EXPECT_TRUE(stack.pop(v));
      EXPECT_EQ(v, 1);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  // The whole nest rolled back: the stack holds exactly {1} again.
  EXPECT_EQ(stack.size(), 1u);
  int v = 0;
  EXPECT_TRUE(stack.pop(v));
  EXPECT_EQ(v, 1);
}

TEST_P(TmdsBackends, StackConcurrentPushPopConserves) {
  TxStack<std::uint64_t> stack;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(t) * kOps + i + 1;
        stack.push(v);
        pushed_sum.fetch_add(v);
        std::uint64_t out = 0;
        if (stack.pop(out)) popped_sum.fetch_add(out);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t rest = 0;
  std::uint64_t out = 0;
  while (stack.pop(out)) rest += out;
  EXPECT_EQ(pushed_sum.load(), popped_sum.load() + rest);
  tm::gc_collect();
}

// ---- TxQueue ----

TEST_P(TmdsBackends, QueueFifoOrder) {
  TxQueue<int> queue;
  for (int i = 1; i <= 5; ++i) queue.enqueue(i);
  int v = 0;
  EXPECT_TRUE(queue.front(v));
  EXPECT_EQ(v, 1);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(queue.dequeue(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(queue.dequeue(v));
  EXPECT_TRUE(queue.empty());
}

TEST_P(TmdsBackends, QueueAtomicTransferBetweenQueues) {
  // Composability: move an element between two queues atomically; an
  // observer transaction must never see it in both or neither.
  TxQueue<int> a, b;
  a.enqueue(42);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread observer([&] {
    while (!stop.load()) {
      const int visible = tm::atomically([&] {
        int count = 0;
        int v = 0;
        if (a.front(v)) ++count;
        if (b.front(v)) ++count;
        return count;
      });
      if (visible != 1) anomalies.fetch_add(1);
    }
  });
  for (int i = 0; i < 500; ++i) {
    tm::atomically([&] {
      int v = 0;
      if (a.dequeue(v))
        b.enqueue(v);
      else if (b.dequeue(v))
        a.enqueue(v);
    });
  }
  stop.store(true);
  observer.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST_P(TmdsBackends, QueueMpmcConservation) {
  TxQueue<std::uint64_t> queue;
  constexpr int kProducers = 2, kConsumers = 2, kItems = 600;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i)
        queue.enqueue(static_cast<std::uint64_t>(p) * kItems + i + 1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      for (;;) {
        if (queue.dequeue(v)) {
          consumed_sum.fetch_add(v);
          consumed_count.fetch_add(1);
        } else if (done_producing.load()) {
          if (!queue.dequeue(v)) break;
          consumed_sum.fetch_add(v);
          consumed_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  done_producing.store(true);
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(consumed_count.load(), kProducers * kItems);
  std::uint64_t expected = 0;
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kItems; ++i)
      expected += static_cast<std::uint64_t>(p) * kItems + i + 1;
  EXPECT_EQ(consumed_sum.load(), expected);
}

// ---- TxHashMap ----

TEST_P(TmdsBackends, HashMapBasicOperations) {
  TxHashMap<std::uint64_t, std::uint64_t> map(64);
  EXPECT_TRUE(map.put(1, 100));
  EXPECT_TRUE(map.put(2, 200));
  EXPECT_FALSE(map.put(1, 111));  // overwrite
  std::uint64_t v = 0;
  EXPECT_TRUE(map.get(1, v));
  EXPECT_EQ(v, 111u);
  EXPECT_TRUE(map.get(2, v));
  EXPECT_EQ(v, 200u);
  EXPECT_FALSE(map.get(3, v));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.size(), 1u);
}

TEST_P(TmdsBackends, HashMapCollidingKeysChainCorrectly) {
  // With 2 buckets, many keys collide; chains must behave.
  TxHashMap<std::uint64_t, std::uint64_t> map(2);
  for (std::uint64_t k = 0; k < 40; ++k) EXPECT_TRUE(map.put(k, k * k));
  EXPECT_EQ(map.size(), 40u);
  for (std::uint64_t k = 0; k < 40; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.get(k, v)) << k;
    EXPECT_EQ(v, k * k);
  }
  // Erase every other key; the rest must survive.
  for (std::uint64_t k = 0; k < 40; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), 20u);
  for (std::uint64_t k = 1; k < 40; k += 2) EXPECT_TRUE(map.contains(k));
  for (std::uint64_t k = 0; k < 40; k += 2) EXPECT_FALSE(map.contains(k));
}

TEST_P(TmdsBackends, HashMapGetOrPutFirstWriterWins) {
  TxHashMap<std::uint64_t, std::uint64_t> map(64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 50;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> observed(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      observed[t].resize(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k)
        observed[t][k] = map.get_or_put(k, static_cast<std::uint64_t>(t) + 1);
    });
  }
  for (auto& th : threads) th.join();
  // Every thread must have observed the SAME winner for each key.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t)
      EXPECT_EQ(observed[t][k], observed[0][k]) << "key " << k;
    std::uint64_t v = 0;
    ASSERT_TRUE(map.get(k, v));
    EXPECT_EQ(v, observed[0][k]);
  }
  EXPECT_EQ(map.size(), kKeys);
}

TEST_P(TmdsBackends, HashMapComposedInventoryInvariant) {
  // Classic composition: move a unit between two map entries atomically.
  TxHashMap<std::uint64_t, std::uint64_t> map(16);
  map.put(0, 100);
  map.put(1, 100);
  constexpr int kTransfers = 400;
  std::thread mover([&] {
    for (int i = 0; i < kTransfers; ++i) {
      tm::atomically([&] {
        std::uint64_t a = 0, b = 0;
        (void)map.get(0, a);
        (void)map.get(1, b);
        if (a > 0) {
          map.put(0, a - 1);
          map.put(1, b + 1);
        }
      });
    }
  });
  int anomalies = 0;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t total = tm::atomically([&] {
      std::uint64_t a = 0, b = 0;
      (void)map.get(0, a);
      (void)map.get(1, b);
      return a + b;
    });
    if (total != 200) ++anomalies;
  }
  mover.join();
  EXPECT_EQ(anomalies, 0);
}

// ---- TxHashMap incremental rehash ----

TEST_P(TmdsBackends, HashMapRehashPreservesContents) {
  TxHashMap<std::uint64_t, std::uint64_t> map(16);
  constexpr std::uint64_t kKeys = 200;
  for (std::uint64_t k = 0; k < kKeys; ++k) map.put(k, k * 3);
  EXPECT_FALSE(map.rehash_pending());
  ASSERT_TRUE(map.rehash(256));
  EXPECT_TRUE(map.rehash_pending());
  EXPECT_EQ(map.bucket_count(), 256u);  // active table switched immediately
  EXPECT_FALSE(map.rehash(512));        // one migration at a time
  // Mid-migration, every key must stay visible (old-table fallback).
  std::uint64_t v = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.get(k, v)) << k;
    EXPECT_EQ(v, k * 3);
  }
  map.migrate_all();
  EXPECT_FALSE(map.rehash_pending());
  EXPECT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.get(k, v));
    EXPECT_EQ(v, k * 3);
  }
  // Shrink back down, exercising the other direction.
  ASSERT_TRUE(map.rehash(32));
  map.migrate_all();
  EXPECT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) EXPECT_TRUE(map.contains(k));
}

TEST_P(TmdsBackends, HashMapMutationsDuringMigrationLand) {
  // Inserts/erases/overwrites issued while the cursor is mid-table must
  // resolve against whichever table currently holds the key.
  TxHashMap<std::uint64_t, std::uint64_t> map(16);
  for (std::uint64_t k = 0; k < 100; ++k) map.put(k, k);
  ASSERT_TRUE(map.rehash(128));
  EXPECT_FALSE(map.put(5, 500));   // overwrite (likely still in old table)
  EXPECT_TRUE(map.erase(6));
  EXPECT_TRUE(map.put(1000, 1));   // fresh insert goes to the active table
  EXPECT_EQ(map.get_or_put(7, 999), 7u);  // existing key wins
  map.migrate_all();
  std::uint64_t v = 0;
  EXPECT_TRUE(map.get(5, v));
  EXPECT_EQ(v, 500u);
  EXPECT_FALSE(map.contains(6));
  EXPECT_TRUE(map.contains(1000));
  EXPECT_EQ(map.size(), 100u);  // 100 - erased + inserted
}

TEST_P(TmdsBackends, HashMapConcurrentMixedOpsWithResizeInFlight) {
  // The satellite scenario: mixed get/set/delete from several threads while
  // a rehash migrates underneath them.  Correctness oracle: a per-thread
  // disjoint key range, so each thread can verify its own writes exactly.
  TxHashMap<std::uint64_t, std::uint64_t> map(16);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 300;
  std::atomic<bool> resize_done{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * kPerThread;
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        map.put(base + i, base + i + 1);
      std::uint64_t v = 0;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(map.get(base + i, v));
        EXPECT_EQ(v, base + i + 1);
      }
      for (std::uint64_t i = 0; i < kPerThread; i += 2)
        EXPECT_TRUE(map.erase(base + i));
    });
  }
  std::thread resizer([&] {
    // Grow, drain cooperatively alongside the workers, then shrink.
    while (!map.rehash(512)) std::this_thread::yield();
    map.migrate_all();
    while (!map.rehash(64)) std::this_thread::yield();
    map.migrate_all();
    resize_done.store(true);
  });
  for (auto& w : workers) w.join();
  resizer.join();
  EXPECT_TRUE(resize_done.load());
  map.migrate_all();
  // Survivors: exactly the odd offsets of each range, values intact.
  std::uint64_t v = 0;
  std::size_t live = 0;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const bool expect_live = (i % 2) == 1;
      EXPECT_EQ(map.contains(base + i), expect_live);
      if (expect_live) {
        ++live;
        EXPECT_TRUE(map.get(base + i, v));
        EXPECT_EQ(v, base + i + 1);
      }
    }
  }
  EXPECT_EQ(map.size(), live);
}

}  // namespace
}  // namespace tmcv::tmds
