// Unit tests for src/util: PRNGs, statistics, backoff, CPU queries.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <set>
#include <vector>

#include "util/backoff.h"
#include "util/cpu.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timing.h"
#include "util/zipf.h"

namespace tmcv {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicSequence) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingleElementHasZeroStddev) {
  const std::vector<double> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsOne) { EXPECT_DOUBLE_EQ(geomean({}), 1.0); }

TEST(Stats, GeomeanInvariantToOrder) {
  const std::vector<double> a{0.5, 2.0, 1.25, 0.8};
  const std::vector<double> b{0.8, 1.25, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(geomean(a), geomean(b));
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, RunTrialsCollectsAll) {
  int calls = 0;
  const auto times = run_trials(5, [&] {
    ++calls;
    return static_cast<double>(calls);
  });
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[4], 5.0);
}

TEST(Backoff, EscalatesToYield) {
  Backoff b(3);
  for (int i = 0; i < 10; ++i) b.wait();
  EXPECT_EQ(b.rounds(), 3u);
  b.reset();
  EXPECT_EQ(b.rounds(), 0u);
}

TEST(Backoff, YieldCapReturnsZeroAndHoldsRound) {
  // Past the cap every step is a sched_yield (returns 0) and the round
  // counter stops advancing -- a long waiter never overflows the shift.
  Backoff b(2, /*seed=*/42);
  EXPECT_GT(b.wait(), 0u);  // round 0: spin
  EXPECT_GT(b.wait(), 0u);  // round 1: spin
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(b.wait(), 0u);  // yields from here on
    EXPECT_EQ(b.rounds(), 2u);
  }
}

TEST(Backoff, JitteredSpinsAreBoundedAndDesynchronized) {
  // Spin counts draw uniformly from [1, 2^round]; two waiters with
  // different seeds must not produce identical schedules (the lockstep
  // herding the jitter exists to break).
  Backoff a(/*yield_after=*/12, /*seed=*/1);
  Backoff b(/*yield_after=*/12, /*seed=*/2);
  bool differ = false;
  for (std::uint32_t round = 0; round < 12; ++round) {
    const std::uint32_t bound = 1u << round;
    const std::uint32_t sa = a.wait();
    const std::uint32_t sb = b.wait();
    EXPECT_GE(sa, 1u);
    EXPECT_LE(sa, bound);
    EXPECT_GE(sb, 1u);
    EXPECT_LE(sb, bound);
    differ = differ || sa != sb;
  }
  EXPECT_TRUE(differ);
}

TEST(Cpu, OnlineCpusAtLeastOne) { EXPECT_GE(online_cpus(), 1u); }

TEST(Cpu, RtmQueryDoesNotCrash) {
  // Value is hardware-dependent; just exercise the cpuid path.
  (void)cpu_has_rtm();
  SUCCEED();
}


TEST(Cpu, EffectiveCpusWithinOnline) {
  const unsigned eff = effective_cpus();
  EXPECT_GE(eff, 1u);
  EXPECT_LE(eff, online_cpus());
}

// ---- ZipfDistribution (util/zipf.h) ----

TEST(Zipf, DeterministicUnderFixedSeed) {
  // The reproducibility contract for every benchmark that reports
  // "zipfian": identical (n, theta, seed) must give identical draws.
  const ZipfDistribution zipf(1024, 0.9);
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(zipf(a), zipf(b));
}

TEST(Zipf, DrawsStayInRange) {
  const ZipfDistribution zipf(64, 0.9);
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf(rng), 64u);
}

TEST(Zipf, SkewConcentratesOnHotRanks) {
  // theta = 0.9 over 64 ranks: ~35% of the mass on the top 4 (the constant
  // bench/micro_tm.cpp documents).  Check both the analytic CDF and an
  // empirical sample against a loose band.
  const ZipfDistribution zipf(64, 0.9);
  EXPECT_NEAR(zipf.cumulative(4), 0.35, 0.05);
  Xoshiro256 rng(99);
  int hot = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (zipf(rng) < 4) ++hot;
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, zipf.cumulative(4), 0.02);
}

TEST(Zipf, ThetaZeroIsUniform) {
  const ZipfDistribution zipf(16, 0.0);
  for (std::size_t k = 1; k <= 16; ++k)
    EXPECT_NEAR(zipf.cumulative(k), static_cast<double>(k) / 16.0, 1e-9);
}

// ---- loopback socket helpers (util/net.h) ----

TEST(Net, EphemeralListenAndRoundtrip) {
  std::uint16_t port = 0;
  const int lfd = listen_loopback(0, port);
  ASSERT_GE(lfd, 0);
  EXPECT_GT(port, 0);  // port 0 resolved to the kernel's pick
  const int cfd = connect_loopback(port);
  ASSERT_GE(cfd, 0);
  EXPECT_TRUE(set_tcp_nodelay(cfd));
  const int sfd = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(sfd, 0);
  const char msg[] = "ping";
  EXPECT_TRUE(send_all(cfd, msg, sizeof msg));
  char buf[8] = {};
  std::size_t got = 0;
  while (got < sizeof msg) {
    const ssize_t n = ::recv(sfd, buf + got, sizeof buf - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  EXPECT_STREQ(buf, "ping");
  ::close(sfd);
  ::close(cfd);
  ::close(lfd);
}

TEST(Net, TakenPortFailsWithAddrInUse) {
  // The "fail loudly when the port is taken" contract: the second bind must
  // return -1 with errno == EADDRINUSE (SO_REUSEADDR does not allow two
  // live listeners on one port).
  std::uint16_t port = 0;
  const int lfd = listen_loopback(0, port);
  ASSERT_GE(lfd, 0);
  std::uint16_t second = 0;
  errno = 0;
  EXPECT_EQ(listen_loopback(port, second), -1);
  EXPECT_EQ(errno, EADDRINUSE);
  ::close(lfd);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little time deterministically.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + static_cast<std::uint64_t>(i);
  EXPECT_GT(sw.elapsed_nanos(), 0u);
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace tmcv
