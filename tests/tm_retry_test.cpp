// Harris-style retry (§6/§7 future work, implemented): predicate waiting
// without condition variables -- the transaction aborts and parks until a
// writing commit, then re-evaluates.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

class TmRetry : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmRetry,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TmRetry, WakesWhenPredicateSatisfied) {
  var<bool> flag(false);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    atomically(GetParam(), [&] {
      if (!flag.load()) retry_wait();
      // Re-executed after the flag-setting commit: flag must be true.
      EXPECT_TRUE(flag.load());
    });
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  atomically([&] { flag.store(true); });
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(TmRetry, ConsumesTokensExactly) {
  var<int> tokens(0);
  constexpr int kTokens = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        bool done = false;
        atomically(GetParam(), [&] {
          done = false;
          const int t = tokens.load();
          if (t == -1) {  // shutdown sentinel
            done = true;
            return;
          }
          if (t == 0) retry_wait();
          tokens.store(t - 1);
        });
        if (done) break;
        consumed.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kTokens; ++i)
    atomically([&] { tokens.store(tokens.load() + 1); });
  while (consumed.load() < kTokens) std::this_thread::yield();
  atomically([&] { tokens.store(-1); });  // wake and stop everyone
  for (auto& c : consumers) c.join();
  EXPECT_EQ(consumed.load(), kTokens);
}

TEST_P(TmRetry, RetryingReaderSeesConsistentSnapshots) {
  // Two cells updated together; a retrying transaction waiting for a
  // threshold must only ever observe equal cells.
  var<long> a(0), b(0);
  std::atomic<int> torn{0};
  std::thread waiter([&] {
    atomically(GetParam(), [&] {
      const long x = a.load();
      const long y = b.load();
      if (x != y) torn.fetch_add(1);
      if (x < 50) retry_wait();
    });
  });
  for (int i = 0; i < 60; ++i) {
    atomically([&] {
      a.store(a.load() + 1);
      b.store(b.load() + 1);
    });
  }
  waiter.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(TmRetryGuards, RetryWaitOutsideTransactionAsserts) {
  // Death tests are slow; verify the precondition indirectly: retry_wait
  // requires an optimistic transaction, and in_txn() is false here.
  EXPECT_FALSE(in_txn());
}

TEST(TmRetryStats, RetriesCountAsAborts) {
  stats_reset();
  var<bool> flag(false);
  std::thread waiter([&] {
    atomically([&] {
      if (!flag.load()) retry_wait();
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  atomically([&] { flag.store(true); });
  waiter.join();
  EXPECT_GE(stats_snapshot().aborts, 1u);
}

}  // namespace
}  // namespace tmcv::tm
