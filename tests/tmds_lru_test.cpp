// TxLruMap / TxLruShard: strict LRU eviction order, the per-shard capacity
// invariant, exact statistics summing across shards, shard-selection
// geometry, and concurrent conservation under mixed load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tmds/tx_lru_map.h"

namespace tmcv::tmds {
namespace {

using tm::Backend;

class LruBackends : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override { tm::set_default_backend(Backend::EagerSTM); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, LruBackends,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

// ---- single shard ----

TEST_P(LruBackends, ShardBasicGetPutEraseAndStats) {
  TxLruShard<std::uint64_t, std::uint64_t> shard(8, 16);
  std::uint64_t v = 0;
  EXPECT_FALSE(shard.get(1, v));  // miss
  EXPECT_TRUE(shard.put(1, 10));  // fresh insert
  EXPECT_FALSE(shard.put(1, 11)); // overwrite
  EXPECT_TRUE(shard.get(1, v));
  EXPECT_EQ(v, 11u);
  EXPECT_TRUE(shard.erase(1));
  EXPECT_FALSE(shard.erase(1));
  const LruStats s = shard.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 0u);
}

TEST_P(LruBackends, ShardEvictsInStrictLruOrder) {
  TxLruShard<std::uint64_t, std::uint64_t> shard(3, 8);
  shard.put(1, 1);
  shard.put(2, 2);
  shard.put(3, 3);
  // Recency now 3 > 2 > 1.  Touch 1 via get: 1 > 3 > 2.
  std::uint64_t v = 0;
  EXPECT_TRUE(shard.get(1, v));
  EXPECT_EQ(shard.keys_by_recency(),
            (std::vector<std::uint64_t>{1, 3, 2}));
  // Insert into the full shard: strict LRU evicts 2 (not 1 or 3).
  shard.put(4, 4);
  EXPECT_FALSE(shard.contains(2));
  EXPECT_TRUE(shard.contains(1));
  EXPECT_TRUE(shard.contains(3));
  EXPECT_TRUE(shard.contains(4));
  // Overwrite refreshes recency too: put(3), then evict -> victim is 1.
  shard.put(3, 33);
  shard.put(5, 5);
  EXPECT_FALSE(shard.contains(1));
  EXPECT_EQ(shard.stats().evictions, 2u);
}

TEST_P(LruBackends, ShardSizeNeverExceedsCapacity) {
  constexpr std::size_t kCap = 16;
  TxLruShard<std::uint64_t, std::uint64_t> shard(kCap, 16);
  for (std::uint64_t k = 0; k < 200; ++k) {
    shard.put(k, k);
    ASSERT_LE(shard.size(), kCap);
  }
  const LruStats s = shard.stats();
  EXPECT_EQ(s.size, kCap);
  EXPECT_EQ(s.evictions, 200u - kCap);
  // The survivors are exactly the kCap most recent inserts.
  for (std::uint64_t k = 200 - kCap; k < 200; ++k)
    EXPECT_TRUE(shard.contains(k));
}

TEST_P(LruBackends, ShardComposesWithAbortingTransaction) {
  TxLruShard<std::uint64_t, std::uint64_t> shard(4, 8);
  shard.put(1, 1);
  try {
    tm::atomically([&] {
      shard.put(2, 2);
      std::uint64_t v = 0;
      EXPECT_TRUE(shard.get(1, v));
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  // Rolled back wholesale: no key 2, and even the hit counter reverted.
  EXPECT_EQ(shard.size(), 1u);
  const LruStats s = shard.stats();
  EXPECT_EQ(s.hits, 0u);
  // contains() above rolled back; survivors' stats only reflect committed
  // operations.
}

// ---- sharded map ----

TEST_P(LruBackends, MapRoutesEveryKeyToExactlyOneShard) {
  TxLruMap<std::uint64_t, std::uint64_t> map(8, 64, 64);
  EXPECT_EQ(map.shard_count(), 8u);
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const std::size_t idx = map.shard_index(k);
    ASSERT_LT(idx, 8u);
    map.put(k, k);
    // The key must live in the shard the index function names.
    EXPECT_TRUE(map.shard(idx).contains(k));
  }
  // With a multiplicative hash the spread should touch every shard.
  for (std::size_t i = 0; i < map.shard_count(); ++i)
    EXPECT_GT(map.shard(i).size(), 0u);
}

TEST_P(LruBackends, MapStatsSumExactlyAcrossShards) {
  TxLruMap<std::uint64_t, std::uint64_t> map(4, 8, 16);
  constexpr std::uint64_t kOps = 500;
  std::uint64_t v = 0;
  for (std::uint64_t k = 0; k < kOps; ++k) map.put(k, k);
  std::uint64_t hits = 0, misses = 0;
  for (std::uint64_t k = 0; k < kOps; ++k)
    if (map.get(k, v)) ++hits; else ++misses;
  // Quiescent: the aggregate must equal the exact per-shard sums AND the
  // client-side tallies (hits + misses == completed gets).
  const LruStats total = map.stats();
  EXPECT_EQ(total.hits, hits);
  EXPECT_EQ(total.misses, misses);
  EXPECT_EQ(total.hits + total.misses, kOps);
  LruStats manual;
  for (std::size_t i = 0; i < map.shard_count(); ++i)
    manual += map.shard(i).stats();
  EXPECT_EQ(manual.hits, total.hits);
  EXPECT_EQ(manual.misses, total.misses);
  EXPECT_EQ(manual.evictions, total.evictions);
  EXPECT_EQ(manual.size, total.size);
  EXPECT_EQ(map.size(), total.size);
}

TEST_P(LruBackends, MapCapacityInvariantHoldsPerShardUnderOverfill) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCap = 8;
  TxLruMap<std::uint64_t, std::uint64_t> map(kShards, kCap, 16);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map.put(k, k);
    for (std::size_t i = 0; i < kShards; ++i)
      ASSERT_LE(map.shard(i).size(), kCap);
  }
  const LruStats s = map.stats();
  EXPECT_LE(s.size, kShards * kCap);
  EXPECT_EQ(s.evictions, 1000u - s.size);
}

TEST_P(LruBackends, MapSingleShardDegeneratesToOneShard) {
  TxLruMap<std::uint64_t, std::uint64_t> map(1, 4, 8);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(map.shard_index(k), 0u);
    map.put(k, k);
  }
  EXPECT_EQ(map.size(), 4u);
}

TEST_P(LruBackends, MapConcurrentMixedOpsKeepInvariants) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCap = 64;
  TxLruMap<std::uint64_t, std::uint64_t> map(kShards, kCap, 64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPer = 800;
  std::vector<std::uint64_t> local_gets(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t v = 0;
      for (std::uint64_t i = 0; i < kOpsPer; ++i) {
        const std::uint64_t k = (i * 7 + static_cast<std::uint64_t>(t)) % 97;
        switch (i % 4) {
          case 0:
          case 1:
            (void)map.get(k, v);
            ++local_gets[static_cast<std::size_t>(t)];
            break;
          case 2:
            map.put(k, k);
            break;
          default:
            (void)map.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Exactness at quiescence: hits + misses equals the gets the clients
  // actually issued -- the transactional counters drop nothing.
  std::uint64_t gets = 0;
  for (const auto g : local_gets) gets += g;
  const LruStats s = map.stats();
  EXPECT_EQ(s.hits + s.misses, gets);
  for (std::size_t i = 0; i < kShards; ++i)
    EXPECT_LE(map.shard(i).size(), kCap);
  EXPECT_EQ(map.size(), s.size);
}

}  // namespace
}  // namespace tmcv::tmds
