// Wait-morphing notify handoff (sync/wait_morph.h): the relay-list
// primitives, the WakeHandoffScope ambient declaration, and the end-to-end
// property the ISSUE names -- a scoped notify_all makes at most ONE waiter
// runnable per unlock, relaying the rest through the per-lock chain.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "core/legacy_cv.h"
#include "sync/semaphore.h"
#include "sync/wait_morph.h"
#include "sync/wake_stats.h"

namespace tmcv {
namespace {

// Restore the global morphing switch after each test.
class MorphGuard {
 public:
  MorphGuard() : saved_(wait_morphing()) {}
  ~MorphGuard() { set_wait_morphing(saved_); }

 private:
  bool saved_;
};

TEST(WaitMorph, RequeueAdvanceRoundTrip) {
  const int key_storage = 0;
  const void* key = &key_storage;
  BinarySemaphore sem;
  MorphWaiter w;
  w.sem = &sem;

  EXPECT_EQ(morph_pending(key), 0u);
  morph_requeue(key, &w);
  EXPECT_EQ(morph_pending(key), 1u);
  EXPECT_FALSE(sem.try_wait());  // requeue parks, it must not post

  EXPECT_TRUE(morph_advance(key));
  EXPECT_EQ(morph_pending(key), 0u);
  EXPECT_TRUE(sem.try_wait());  // advance posted exactly one token
  EXPECT_FALSE(sem.try_wait());

  EXPECT_FALSE(morph_advance(key));  // empty chain: no-op
}

TEST(WaitMorph, ChainDrainsInFifoOrder) {
  const int key_storage = 0;
  const void* key = &key_storage;
  BinarySemaphore s1, s2, s3;
  MorphWaiter w1, w2, w3;
  w1.sem = &s1;
  w2.sem = &s2;
  w3.sem = &s3;
  morph_requeue(key, &w1);
  morph_requeue(key, &w2);
  morph_requeue(key, &w3);
  EXPECT_EQ(morph_pending(key), 3u);

  EXPECT_TRUE(morph_advance(key));
  EXPECT_TRUE(s1.try_wait());  // FIFO: first requeued wakes first
  EXPECT_FALSE(s2.try_wait());
  EXPECT_FALSE(s3.try_wait());

  EXPECT_TRUE(morph_advance(key));
  EXPECT_TRUE(s2.try_wait());
  EXPECT_TRUE(morph_advance(key));
  EXPECT_TRUE(s3.try_wait());
  EXPECT_EQ(morph_pending(key), 0u);
}

TEST(WaitMorph, DistinctKeysAreIsolated) {
  const int a_storage = 0, b_storage = 0;
  const void *ka = &a_storage, *kb = &b_storage;
  BinarySemaphore sem;
  MorphWaiter w;
  w.sem = &sem;
  morph_requeue(ka, &w);
  EXPECT_FALSE(morph_advance(kb));  // other key sees an empty chain
  EXPECT_EQ(morph_pending(ka), 1u);
  EXPECT_TRUE(morph_advance(ka));
  EXPECT_TRUE(sem.try_wait());
}

TEST(WaitMorph, HandoffScopeNestsAndRestores) {
  EXPECT_EQ(current_lock_scope(), nullptr);
  std::mutex outer, inner;
  {
    WakeHandoffScope a(outer);
    EXPECT_EQ(current_lock_scope(), static_cast<const void*>(&outer));
    {
      WakeHandoffScope b(inner);
      EXPECT_EQ(current_lock_scope(), static_cast<const void*>(&inner));
    }
    EXPECT_EQ(current_lock_scope(), static_cast<const void*>(&outer));
  }
  EXPECT_EQ(current_lock_scope(), nullptr);
}

TEST(WaitMorph, ToggleRoundTrips) {
  MorphGuard guard;
  set_wait_morphing(false);
  EXPECT_FALSE(wait_morphing());
  set_wait_morphing(true);
  EXPECT_TRUE(wait_morphing());
}

// The tentpole property: notify_all under the lock makes exactly one waiter
// runnable; the remaining kWaiters-1 sit on the relay chain until each
// predecessor re-acquires and advances it.  Assertable deterministically
// because the notifier still holds the mutex when it checks the chain.
TEST(WaitMorph, ScopedNotifyAllRelaysOneWaiterPerUnlock) {
  MorphGuard guard;
  set_wait_morphing(true);
  constexpr int kWaiters = 4;

  std::mutex m;
  condition_variable cv;
  bool go = false;
  int awake = 0;
  const WakeStats before = wake_stats_snapshot();

  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      std::unique_lock<std::mutex> lock(m);
      while (!go) cv.wait(lock);
      ++awake;
    });
  }
  while (cv.raw().waiter_count() < kWaiters) std::this_thread::yield();

  {
    std::unique_lock<std::mutex> lock(m);
    go = true;
    cv.notify_all(lock);
    // Still holding the mutex: kWaiters-1 waiters morphed onto the chain,
    // so at most one thread is runnable right now.
    EXPECT_EQ(morph_pending(static_cast<const void*>(&m)),
              static_cast<std::size_t>(kWaiters - 1));
  }

  for (auto& t : threads) t.join();
  EXPECT_EQ(awake, kWaiters);
  EXPECT_EQ(morph_pending(static_cast<const void*>(&m)), 0u);

  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.requeues - before.requeues,
            static_cast<std::uint64_t>(kWaiters - 1));
  EXPECT_EQ(after.handoffs - before.handoffs,
            static_cast<std::uint64_t>(kWaiters - 1));
}

TEST(WaitMorph, ScopedNotifyOneSkipsTheChain) {
  MorphGuard guard;
  set_wait_morphing(true);
  std::mutex m;
  condition_variable cv;
  bool go = false;
  const WakeStats before = wake_stats_snapshot();
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(m);
    while (!go) cv.wait(lock);
  });
  while (cv.raw().waiter_count() < 1) std::this_thread::yield();
  {
    std::unique_lock<std::mutex> lock(m);
    go = true;
    cv.notify_one(lock);  // single victim: direct post, no requeue
  }
  waiter.join();
  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.requeues, before.requeues);
}

TEST(WaitMorph, DisabledMorphingFallsBackToBatchWake) {
  MorphGuard guard;
  set_wait_morphing(false);
  constexpr int kWaiters = 3;
  std::mutex m;
  condition_variable cv;
  bool go = false;
  const WakeStats before = wake_stats_snapshot();
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      std::unique_lock<std::mutex> lock(m);
      while (!go) cv.wait(lock);
    });
  }
  while (cv.raw().waiter_count() < kWaiters) std::this_thread::yield();
  {
    std::unique_lock<std::mutex> lock(m);
    go = true;
    cv.notify_all(lock);  // scope declared but morphing off: herd wake
    EXPECT_EQ(morph_pending(static_cast<const void*>(&m)), 0u);
  }
  for (auto& t : threads) t.join();
  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.requeues, before.requeues);
}

TEST(WaitMorph, UnscopedNotifyAllStillWakesEveryone) {
  MorphGuard guard;
  set_wait_morphing(true);
  constexpr int kWaiters = 3;
  std::mutex m;
  condition_variable cv;
  bool go = false;
  const WakeStats before = wake_stats_snapshot();
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      std::unique_lock<std::mutex> lock(m);
      while (!go) cv.wait(lock);
    });
  }
  while (cv.raw().waiter_count() < kWaiters) std::this_thread::yield();
  {
    std::unique_lock<std::mutex> lock(m);
    go = true;
  }
  cv.notify_all();  // no scope: nothing to morph onto
  for (auto& t : threads) t.join();
  const WakeStats after = wake_stats_snapshot();
  EXPECT_EQ(after.requeues, before.requeues);
}

// Timed waiters participate in the chain too: a wait_for that is notified
// while morph-parked must still consume its relay link exactly once.
TEST(WaitMorph, TimedWaitersDrainTheChain) {
  MorphGuard guard;
  set_wait_morphing(true);
  constexpr int kWaiters = 3;
  std::mutex m;
  condition_variable cv;
  bool go = false;
  int notified = 0;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      std::unique_lock<std::mutex> lock(m);
      while (!go) {
        if (cv.wait_for(lock, std::chrono::seconds(30))) ++notified;
      }
    });
  }
  while (cv.raw().waiter_count() < kWaiters) std::this_thread::yield();
  {
    std::unique_lock<std::mutex> lock(m);
    go = true;
    cv.notify_all(lock);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(notified, kWaiters);
  EXPECT_EQ(morph_pending(static_cast<const void*>(&m)), 0u);
}

}  // namespace
}  // namespace tmcv
