// NOrec backend semantics: value-based validation (a silent store does not
// abort readers), read-your-own-write through the redo log, multi-threaded
// counter conservation, retry_wait integration, and the family override
// that keeps NOrec and orec transactions from ever overlapping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "tm/var.h"

namespace tmcv {
namespace {

using tm::Backend;

class TmNorec : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = tm::default_backend();
    tm::set_default_backend(Backend::NOrec);
    tm::stats_reset();
  }
  void TearDown() override { tm::set_default_backend(saved_); }

 private:
  Backend saved_{};
};

TEST_F(TmNorec, ReadYourOwnWrite) {
  tm::var<int> x(1);
  int seen = -1;
  tm::atomically([&] {
    x.store(41);
    x.store(x.load() + 1);
    seen = x.load();
  });
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(x.load_plain(), 42);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.norec_commits, 1u);
}

TEST_F(TmNorec, ReadOnlyCommitSkipsCounterBump) {
  tm::var<int> x(7);
  const int v = tm::atomically([&] { return x.load(); });
  EXPECT_EQ(v, 7);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.ro_commits, 1u);
  EXPECT_EQ(s.norec_commits, 0u);  // read-only: no counter traffic
}

// The NOrec differentiator: validation compares *values*, so a concurrent
// commit that writes back the value a reader already saw (a silent store)
// must not abort the reader.  An orec backend would abort here -- the
// stripe version moved -- which is exactly the conservatism NOrec sheds.
TEST_F(TmNorec, SilentStoreDoesNotAbortReader) {
  tm::var<std::uint64_t> x(42);
  std::atomic<bool> reader_in_txn{false};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    while (!reader_in_txn.load(std::memory_order_acquire))
      std::this_thread::yield();
    tm::atomically([&] { x.store(42); });  // silent: same value, counter bumps
    writer_done.store(true, std::memory_order_release);
  });

  std::uint64_t first = 0, second = 0;
  tm::atomically([&] {
    first = x.load();
    reader_in_txn.store(true, std::memory_order_release);
    while (!writer_done.load(std::memory_order_acquire))
      std::this_thread::yield();
    second = x.load();  // counter moved: forces value revalidation
  });
  writer.join();

  EXPECT_EQ(first, 42u);
  EXPECT_EQ(second, 42u);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.aborts, 0u);
  EXPECT_EQ(s.norec_val_failures, 0u);
  EXPECT_GE(s.norec_validations, 1u);
  EXPECT_EQ(s.norec_commits, 1u);  // the writer's silent store
}

TEST_F(TmNorec, MultiThreadedCounterConservation) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  tm::var<long> counter(0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i)
        tm::atomically([&] { counter.store(counter.load() + 1); });
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.load_plain(), long{kThreads} * kIncrements);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_GE(s.commits, static_cast<std::uint64_t>(kThreads) * kIncrements);
  // Every abort is attributed to the NOrec row of the matrix (the family
  // override means no other backend ran), and the matrix sums to `aborts`.
  std::uint64_t matrix_total = 0, norec_row = 0;
  for (std::size_t b = 0; b < tm::kStatsBackends; ++b)
    for (std::size_t r = 0; r < tm::kStatsAbortReasons; ++r) {
      matrix_total += s.aborts_by_backend[b][r];
      if (b == static_cast<std::size_t>(Backend::NOrec))
        norec_row += s.aborts_by_backend[b][r];
    }
  EXPECT_EQ(matrix_total, s.aborts);
  EXPECT_EQ(norec_row, s.aborts);
}

TEST_F(TmNorec, RetryWaitWakesOnNorecCommit) {
  tm::var<int> flag(0);
  int observed = 0;
  std::thread waiter([&] {
    tm::atomically([&] {
      if (flag.load() == 0) tm::retry_wait();
      observed = flag.load();
    });
  });
  // Give the waiter a chance to park, then publish through a NOrec commit
  // (which bumps the commit signal and wakes the futex).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tm::atomically([&] { flag.store(9); });
  waiter.join();
  EXPECT_EQ(observed, 9);
}

// Family override, NOrec-default side: every request -- including explicit
// orec-family and Hybrid requests -- runs NOrec while the default is NOrec.
TEST_F(TmNorec, FamilyOverrideCoercesExplicitRequests) {
  tm::var<int> x(0);
  tm::atomically(Backend::EagerSTM, [&] { x.store(x.load() + 1); });
  tm::atomically(Backend::Hybrid, [&] { x.store(x.load() + 1); });
  EXPECT_EQ(x.load_plain(), 2);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.norec_commits, 2u);
}

// Family override, orec-default side: an explicit NOrec request under an
// orec default coerces to LazySTM (redo-log family, no global counter).
TEST_F(TmNorec, NorecRequestUnderOrecDefaultRunsLazy) {
  tm::set_default_backend(Backend::EagerSTM);
  tm::stats_reset();
  tm::var<int> x(0);
  tm::atomically(Backend::NOrec, [&] { x.store(x.load() + 1); });
  EXPECT_EQ(x.load_plain(), 1);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.norec_commits, 0u);
}

}  // namespace
}  // namespace tmcv
