// Telemetry-endpoint tests: ephemeral-port bind, all seven routes over a raw
// loopback socket, error statuses, stop/restart, and the C API singleton.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "core/c_api.h"
#include "obs/telemetry_server.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"

namespace obs = tmcv::obs;

namespace {

// Minimal HTTP client: one request, read to EOF (the server closes after
// each response).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return resp;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(ObsTelemetryTest, ServesAllRoutesOnEphemeralPort) {
  obs::TelemetryServer server;
  obs::TelemetryOptions opts;
  opts.port = 0;  // ephemeral
  opts.snapshot_interval_ms = 10;
  ASSERT_TRUE(server.start(opts));
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  EXPECT_FALSE(server.start(opts));  // double start refused

  const std::string prom = http_get(server.port(), "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("tmcv_tm_commits_total"), std::string::npos);

  const std::string json = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"tm\""), std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);

  const std::string profile = http_get(server.port(), "/profile");
  EXPECT_NE(profile.find("200 OK"), std::string::npos);
  EXPECT_NE(profile.find("\"conflict_pairs\""), std::string::npos);
  EXPECT_NE(profile.find("\"hot_stripes\""), std::string::npos);

  // History + alerts routes answer even when the recorder/watchdog are not
  // running: an empty-but-valid document, never a 404.
  const std::string hist = http_get(server.port(), "/history.json");
  EXPECT_NE(hist.find("200 OK"), std::string::npos);
  EXPECT_NE(hist.find("application/json"), std::string::npos);
  EXPECT_NE(hist.find("\"samples\""), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/history").find("200 OK"),
            std::string::npos);
  const std::string alerts = http_get(server.port(), "/alerts");
  EXPECT_NE(alerts.find("200 OK"), std::string::npos);
  EXPECT_NE(alerts.find("\"watchdog_running\""), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.stop();  // idempotent

  // Restart binds a fresh socket and serves again.
  ASSERT_TRUE(server.start(opts));
  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.stop();
}

TEST(ObsTelemetryTest, HistoryAndAlertRoutesReflectLiveRecorder) {
  // Drive the recorder manually (no sampler thread) so the routes serve
  // deterministic content, and check the watchdog gauges ride /metrics.
  obs::TimeSeriesOptions ts;
  ts.interval_ms = 10;
  ts.depth = 8;
  ts.sampler_thread = false;
  ASSERT_TRUE(obs::timeseries().start(ts));
  obs::timeseries().sample_now();
  obs::watchdog().start(obs::default_rules());

  obs::TelemetryServer server;
  obs::TelemetryOptions opts;
  opts.port = 0;
  ASSERT_TRUE(server.start(opts));

  const std::string hist = http_get(server.port(), "/history.json");
  EXPECT_NE(hist.find("\"running\": true"), std::string::npos);
  EXPECT_NE(hist.find("\"commits_per_sec\""), std::string::npos);
  const std::string table = http_get(server.port(), "/history");
  EXPECT_NE(table.find("commit/s"), std::string::npos);

  const std::string alerts = http_get(server.port(), "/alerts");
  EXPECT_NE(alerts.find("\"watchdog_running\": true"), std::string::npos);
  EXPECT_NE(alerts.find("\"abort_storm\""), std::string::npos);

  const std::string prom = http_get(server.port(), "/metrics");
  EXPECT_NE(prom.find("tmcv_alerts_firing{rule=\"abort_storm\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tmcv_alerts_fired_total{rule=\"latency_p99\"}"),
            std::string::npos);

  server.stop();
  obs::watchdog().stop();
  obs::timeseries().stop();
}

TEST(ObsTelemetryTest, TakenPortFailsWithAddrInUse) {
  // The loud-failure contract (shared with the KV server and bench mains):
  // binding an occupied port returns false with errno == EADDRINUSE so the
  // caller can print why, instead of a silent false.
  obs::TelemetryServer first;
  obs::TelemetryOptions opts;
  opts.port = 0;
  ASSERT_TRUE(first.start(opts));
  obs::TelemetryServer second;
  opts.port = first.port();  // occupied
  errno = 0;
  EXPECT_FALSE(second.start(opts));
  EXPECT_EQ(errno, EADDRINUSE);
  EXPECT_FALSE(second.running());
  // And the C API surfaces the same errno.
  errno = 0;
  EXPECT_EQ(tmcv_telemetry_start(first.port()), -1);
  EXPECT_EQ(errno, EADDRINUSE);
  first.stop();
  // The port is free again: a retry on the exact same port succeeds
  // (SO_REUSEADDR spares the TIME_WAIT dance).
  ASSERT_TRUE(second.start(opts));
  EXPECT_EQ(second.port(), opts.port);
  second.stop();
}

TEST(ObsTelemetryTest, CApiSingletonLifecycle) {
  const int port = tmcv_telemetry_start(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(tmcv_telemetry_start(0), -1);  // already running
  EXPECT_NE(http_get(static_cast<std::uint16_t>(port), "/healthz")
                .find("200 OK"),
            std::string::npos);
  tmcv_telemetry_stop();
  tmcv_telemetry_stop();  // idempotent

  const int port2 = tmcv_telemetry_start(0);
  ASSERT_GT(port2, 0);
  tmcv_telemetry_stop();

  EXPECT_EQ(tmcv_telemetry_start(-1), -1);      // invalid port
  EXPECT_EQ(tmcv_telemetry_start(65536), -1);   // invalid port
}

}  // namespace
