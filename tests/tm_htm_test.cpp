// HTM-emulation specifics: capacity aborts, syscall aborts, and the serial
// fallback path (the "Haswell" behaviours the condvar design works around).
#include <gtest/gtest.h>

#include "backend_fixture.h"  // orec/HTM-specific: pin the eager default

#include <thread>

#include "tm/api.h"
#include "tm/var.h"
#include "util/cpu.h"

namespace tmcv::tm {
namespace {

TEST(TmHtm, WriteCapacityAbortFallsBackToSerial) {
  stats_reset();
  constexpr std::size_t kVars = TxDescriptor::kHtmWriteCapacity + 8;
  std::vector<std::unique_ptr<var<int>>> vars;
  for (std::size_t i = 0; i < kVars; ++i)
    vars.push_back(std::make_unique<var<int>>(0));
  // Too many writes for a hardware transaction: every optimistic attempt
  // takes a capacity abort, then the serial fallback completes it.
  atomically(Backend::HTM, [&] {
    for (std::size_t i = 0; i < kVars; ++i) vars[i]->store(1);
  });
  for (std::size_t i = 0; i < kVars; ++i) EXPECT_EQ(vars[i]->load(), 1);
  const Stats s = stats_snapshot();
  EXPECT_GT(s.htm_capacity_aborts, 0u);
  EXPECT_GT(s.serial_fallbacks, 0u);
}

TEST(TmHtm, ReadCapacityAbortFallsBackToSerial) {
  stats_reset();
  constexpr std::size_t kVars = TxDescriptor::kHtmReadCapacity + 8;
  std::vector<std::unique_ptr<var<int>>> vars;
  for (std::size_t i = 0; i < kVars; ++i)
    vars.push_back(std::make_unique<var<int>>(static_cast<int>(i)));
  long sum = 0;
  atomically(Backend::HTM, [&] {
    sum = 0;
    for (std::size_t i = 0; i < kVars; ++i) sum += vars[i]->load();
  });
  EXPECT_EQ(sum, static_cast<long>(kVars * (kVars - 1) / 2));
  EXPECT_GT(stats_snapshot().htm_capacity_aborts, 0u);
}

TEST(TmHtm, SyscallFenceAbortsHardwareTransaction) {
  stats_reset();
  var<int> x(0);
  int optimistic_attempts = 0;
  atomically(Backend::HTM, [&] {
    x.store(1);
    if (descriptor().state() == TxState::Optimistic) {
      ++optimistic_attempts;
      syscall_fence();  // aborts: a syscall would kill a real RTM txn
    }
    x.store(2);
  });
  // Completed only via the serial fallback, after exactly ONE hardware
  // attempt: a syscall abort is deterministic for the closure, so the CM
  // forfeits the remaining hardware budget instead of burning it.
  EXPECT_EQ(x.load(), 2);
  EXPECT_EQ(optimistic_attempts, 1);
  const Stats s = stats_snapshot();
  EXPECT_EQ(s.htm_syscall_aborts, 1u);
  EXPECT_GT(s.serial_fallbacks, 0u);
}

TEST(TmHtm, SyscallFenceNoOpInStmAndSerial) {
  var<int> x(0);
  atomically(Backend::EagerSTM, [&] {
    syscall_fence();  // STM tolerates it (would go irrevocable in GCC)
    x.store(1);
  });
  EXPECT_EQ(x.load(), 1);
  irrevocably([&] {
    syscall_fence();
    x.store(2);
  });
  EXPECT_EQ(x.load(), 2);
  syscall_fence();  // outside any transaction: no-op
}

TEST(TmHtm, SmallTransactionsStayOptimistic) {
  stats_reset();
  var<int> x(0);
  for (int i = 0; i < 100; ++i)
    atomically(Backend::HTM, [&] { x.store(x.load() + 1); });
  EXPECT_EQ(x.load(), 100);
  const Stats s = stats_snapshot();
  // Uncontended small transactions: no capacity pressure, no fallback.
  EXPECT_EQ(s.htm_capacity_aborts, 0u);
  EXPECT_EQ(s.serial_fallbacks, 0u);
}

TEST(TmHtm, ConflictingHtmTransactionsAllComplete) {
  var<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        atomically(Backend::HTM, [&] { counter.store(counter.load() + 1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kIters);
}

TEST(TmHtm, RtmDetectionIsConsistent) {
  // The container may or may not have TSX; the emulation must be selected
  // deterministically either way.  (We always emulate; this documents the
  // substitution and exercises the probe.)
  const bool rtm = cpu_has_rtm();
  (void)rtm;
  SUCCEED();
}

}  // namespace
}  // namespace tmcv::tm
