// Latency-histogram unit tests: bucket boundaries, merge associativity,
// and percentile queries (p50/p99/p999).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/histogram.h"

namespace obs = tmcv::obs;
namespace hd = tmcv::obs::hist_detail;

namespace {

TEST(ObsHistogramBuckets, SmallValuesAreExact) {
  // Below kSub (16) every value owns its own bucket.
  for (std::uint64_t v = 0; v < hd::kSub; ++v) {
    EXPECT_EQ(hd::bucket_of(v), v);
    EXPECT_EQ(hd::bucket_lower_bound(v), v);
    EXPECT_EQ(hd::bucket_width(v), 1u);
  }
}

TEST(ObsHistogramBuckets, LowerBoundIsAFixedPoint) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // one below it to the previous bucket: the boundaries are exact.
  for (std::size_t idx = 1; idx < hd::kBuckets; ++idx) {
    const std::uint64_t lo = hd::bucket_lower_bound(idx);
    EXPECT_EQ(hd::bucket_of(lo), idx) << "lower bound of bucket " << idx;
    EXPECT_EQ(hd::bucket_of(lo - 1), idx - 1)
        << "value below bucket " << idx;
  }
}

TEST(ObsHistogramBuckets, WidthMatchesBoundaryGap) {
  for (std::size_t idx = 0; idx + 1 < hd::kBuckets; ++idx) {
    EXPECT_EQ(hd::bucket_lower_bound(idx + 1) - hd::bucket_lower_bound(idx),
              hd::bucket_width(idx))
        << "bucket " << idx;
  }
}

TEST(ObsHistogramBuckets, RelativeResolutionIsOneSixteenth) {
  // Width / lower-bound <= 1/16 for every bucket past the linear range.
  for (std::size_t idx = hd::kSub; idx < hd::kBuckets; ++idx) {
    EXPECT_LE(hd::bucket_width(idx) * hd::kSub, hd::bucket_lower_bound(idx))
        << "bucket " << idx;
  }
}

TEST(ObsHistogramBuckets, HugeValuesClampToLastBucket) {
  EXPECT_EQ(hd::bucket_of(~0ull), hd::kBuckets - 1);
  EXPECT_EQ(hd::bucket_of(hd::kClamp), hd::kBuckets - 1);
}

TEST(ObsHistogram, RecordAndMean) {
  obs::LatencyHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 60u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

obs::HistogramSnapshot snap_of(const std::vector<std::uint64_t>& values) {
  obs::LatencyHistogram h;
  for (const std::uint64_t v : values) h.record(v);
  return h.snapshot();
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  const obs::HistogramSnapshot a = snap_of({1, 5, 900, 1000000});
  const obs::HistogramSnapshot b = snap_of({2, 2, 77, 31337});
  const obs::HistogramSnapshot c = snap_of({12345678901ull, 3});

  const obs::HistogramSnapshot ab_c = (a + b) + c;
  const obs::HistogramSnapshot a_bc = a + (b + c);
  const obs::HistogramSnapshot cba = c + b + a;
  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_TRUE(ab_c == cba);
  EXPECT_EQ(ab_c.count, 10u);

  // Delta inverts merge: (a + b) - b == a.
  EXPECT_TRUE((a + b) - b == a);
}

TEST(ObsHistogram, PercentilesOnUniformRange) {
  // 1..1000: percentile(q) must land within one bucket of q*1000.
  obs::LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();

  for (const double q : {0.5, 0.99, 0.999}) {
    const auto exact = static_cast<std::uint64_t>(q * 1000.0);
    const std::uint64_t got = s.percentile(q);
    // Result is the lower bound of the bucket holding the rank value:
    // got <= exact < got + width(bucket_of(got)).
    EXPECT_LE(got, exact) << "q=" << q;
    EXPECT_GT(got + hd::bucket_width(hd::bucket_of(got)), exact)
        << "q=" << q;
  }
  EXPECT_EQ(s.percentile(0.0), 1u);   // rank clamps to the first value
  EXPECT_LE(s.percentile(1.0), 1000u);
  EXPECT_GE(s.percentile(1.0), 960u);  // within 1/16 of the true max
}

TEST(ObsHistogram, PercentileOfPointMass) {
  // All mass on one value: every percentile returns its bucket.
  obs::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(4242);
  const obs::HistogramSnapshot s = h.snapshot();
  const std::uint64_t lo = hd::bucket_lower_bound(hd::bucket_of(4242));
  EXPECT_EQ(s.percentile(0.5), lo);
  EXPECT_EQ(s.percentile(0.99), lo);
  EXPECT_EQ(s.percentile(0.999), lo);
  // Exact extrema, not the 1/16-wide bucket bound (regression: the bucket
  // lower bound for 4242 is 4096, which misreported max by ~3.5%).
  EXPECT_EQ(s.min_observed(), 4242u);
  EXPECT_EQ(s.max_observed(), 4242u);
}

TEST(ObsHistogram, TracksExactMinMaxAcrossBuckets) {
  obs::LatencyHistogram h;
  h.record(777);
  h.record(3);
  h.record(123456789);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.min_observed(), 3u);
  EXPECT_EQ(s.max_observed(), 123456789u);
  EXPECT_EQ(s.min_value, 3u);
  EXPECT_EQ(s.max_value, 123456789u);

  // reset() forgets the extrema along with the buckets.
  h.reset();
  const obs::HistogramSnapshot r = h.snapshot();
  EXPECT_EQ(r.min_observed(), 0u);
  EXPECT_EQ(r.max_observed(), 0u);

  // Merge combines extrema; only non-empty operands contribute.
  obs::LatencyHistogram a, b;
  a.record(50);
  a.record(500);
  b.record(7);
  obs::HistogramSnapshot sum = a.snapshot();
  sum += b.snapshot();
  EXPECT_EQ(sum.min_observed(), 7u);
  EXPECT_EQ(sum.max_observed(), 500u);
  sum += obs::HistogramSnapshot{};  // empty: extrema unchanged
  EXPECT_EQ(sum.min_observed(), 7u);
  EXPECT_EQ(sum.max_observed(), 500u);

  // Delta keeps the minuend's (cumulative) extrema -- a window's true
  // extrema are unknowable from two cumulative snapshots -- and equality
  // ignores them, preserving the (a + b) - b == a algebra.
  const obs::HistogramSnapshot d = sum - b.snapshot();
  EXPECT_EQ(d.min_value, sum.min_value);
  EXPECT_EQ(d.max_value, sum.max_value);
  EXPECT_TRUE(d == a.snapshot());
}

TEST(ObsHistogram, PercentileSplitsBimodalMass) {
  // 90 fast (≈100ns) + 10 slow (≈1ms): p50 sees the fast mode, p99/p999
  // the slow one.
  obs::LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000000);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(0.5), hd::bucket_lower_bound(hd::bucket_of(100)));
  EXPECT_EQ(s.percentile(0.99),
            hd::bucket_lower_bound(hd::bucket_of(1000000)));
  EXPECT_EQ(s.percentile(0.999),
            hd::bucket_lower_bound(hd::bucket_of(1000000)));
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
  const obs::HistogramSnapshot s;
  EXPECT_EQ(s.percentile(0.5), 0u);
  EXPECT_EQ(s.max_observed(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
