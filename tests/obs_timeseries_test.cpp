// Time-series recorder tests: lifecycle, delta correctness against real
// transactions, ring wraparound, derived-rate math, the JSON/text
// exporters, the observer hook, the sampler thread, and the recorder's
// central memory promise -- zero heap allocation per sample after warm-up,
// enforced with counting global operator new/delete.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "tm/api.h"
#include "tm/var.h"

namespace obs = tmcv::obs;

// ---------------------------------------------------------------------------
// Counting allocator: every path into the heap funnels through these.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

obs::TimeSeriesOptions manual_opts(std::uint32_t depth = 16) {
  obs::TimeSeriesOptions opts;
  opts.interval_ms = 10;
  opts.depth = depth;
  opts.sampler_thread = false;  // tests drive sample_now() deterministically
  return opts;
}

TEST(ObsTimeSeriesTest, StartStopLifecycle) {
  obs::TimeSeriesRecorder rec;
  EXPECT_FALSE(rec.running());
  rec.sample_now();  // no-op before start
  EXPECT_EQ(rec.samples_taken(), 0u);

  ASSERT_TRUE(rec.start(manual_opts()));
  EXPECT_TRUE(rec.running());
  EXPECT_FALSE(rec.start(manual_opts()));  // double start refused
  EXPECT_EQ(rec.interval_ms(), 10u);
  EXPECT_EQ(rec.depth(), 16u);

  rec.sample_now();
  EXPECT_EQ(rec.samples_taken(), 1u);

  rec.stop();
  EXPECT_FALSE(rec.running());
  rec.stop();  // idempotent
  // The window stays readable after stop.
  std::vector<obs::TsSample> window;
  rec.history(window);
  EXPECT_EQ(window.size(), 1u);

  // Restart is fresh: tick numbering and the ring restart at zero.
  ASSERT_TRUE(rec.start(manual_opts()));
  EXPECT_EQ(rec.samples_taken(), 0u);
  rec.stop();
}

TEST(ObsTimeSeriesTest, ClampsDegenerateOptions) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeriesOptions opts;
  opts.interval_ms = 0;  // clamped to 10
  opts.depth = 0;        // clamped to 2
  opts.sampler_thread = false;
  ASSERT_TRUE(rec.start(opts));
  EXPECT_GE(rec.interval_ms(), 10u);
  EXPECT_GE(rec.depth(), 2u);
  rec.stop();
}

TEST(ObsTimeSeriesTest, SamplesCarryCounterDeltas) {
  obs::TimeSeriesRecorder rec;
  ASSERT_TRUE(rec.start(manual_opts()));

  tmcv::tm::var<std::uint64_t> x(0);
  for (int i = 0; i < 25; ++i)
    tmcv::tm::atomically([&] { x.store(x.load() + 1); });
  rec.sample_now();

  std::vector<obs::TsSample> window;
  rec.history(window);
  ASSERT_EQ(window.size(), 1u);
  // Deltas, not cumulative values: exactly the work since start() (the
  // baseline), not since process birth.  Other tests in this binary ran
  // before the baseline was captured, so >= tolerates only same-test work.
  EXPECT_GE(window[0].commits, 25u);
  EXPECT_EQ(window[0].seq, 0u);

  // A quiet interval yields (near-)zero deltas.
  rec.sample_now();
  rec.history(window);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[1].commits, 0u);
  EXPECT_EQ(window[1].seq, 1u);
  rec.stop();
}

TEST(ObsTimeSeriesTest, RingWrapsKeepingNewest) {
  obs::TimeSeriesRecorder rec;
  ASSERT_TRUE(rec.start(manual_opts(/*depth=*/4)));
  for (int i = 0; i < 11; ++i) rec.sample_now();
  EXPECT_EQ(rec.samples_taken(), 11u);

  std::vector<obs::TsSample> window;
  rec.history(window);
  ASSERT_EQ(window.size(), 4u);  // depth caps retention
  // Oldest-first, consecutive, ending at the newest tick.
  EXPECT_EQ(window.front().seq, 7u);
  EXPECT_EQ(window.back().seq, 10u);
  for (std::size_t i = 1; i < window.size(); ++i)
    EXPECT_EQ(window[i].seq, window[i - 1].seq + 1);
  rec.stop();
}

TEST(ObsTimeSeriesTest, DerivedRateMath) {
  obs::TsSample s;
  s.interval_ms = 500;
  s.commits = 1000;
  s.aborts = 100;
  EXPECT_DOUBLE_EQ(s.commits_per_sec(), 2000.0);
  EXPECT_DOUBLE_EQ(s.aborts_per_sec(), 200.0);
  EXPECT_DOUBLE_EQ(s.abort_commit_ratio(), 0.1);

  // Degenerate denominators must not divide by zero.
  obs::TsSample zero;
  EXPECT_DOUBLE_EQ(zero.commits_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(zero.abort_commit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(zero.kv_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.park_ratio(), 0.0);

  // All-aborts interval (live-locked storm): the ratio must still scream,
  // not flatline at 0 because commits==0.
  obs::TsSample storm;
  storm.interval_ms = 1000;
  storm.aborts = 42;
  EXPECT_DOUBLE_EQ(storm.abort_commit_ratio(), 42.0);

  obs::TsSample kv;
  kv.kv_hits = 90;
  kv.kv_misses = 10;
  kv.parks = 3;
  kv.parks_avoided = 1;
  EXPECT_DOUBLE_EQ(kv.kv_hit_rate(), 0.9);
  EXPECT_DOUBLE_EQ(kv.park_ratio(), 0.75);
}

TEST(ObsTimeSeriesTest, JsonAndTextExporters) {
  obs::TimeSeriesRecorder rec;
  ASSERT_TRUE(rec.start(manual_opts()));
  rec.sample_now();
  rec.sample_now();

  const std::string json = rec.to_json();
  for (const char* needle :
       {"\"meta\"", "\"interval_ms\": 10", "\"depth\": 16",
        "\"samples_taken\": 2", "\"running\": true", "\"samples\"",
        "\"commits\"", "\"aborts_conflict\"", "\"notify_wake_p99_ns\"",
        "\"kv_evictions\"", "\"commits_per_sec\"", "\"abort_commit_ratio\"",
        "\"park_ratio\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;

  const std::string text = rec.to_text();
  EXPECT_NE(text.find("commit/s"), std::string::npos);
  EXPECT_NE(text.find("abort/s"), std::string::npos);
  rec.stop();

  // An idle (never-started) recorder still exports a valid document: the
  // telemetry routes are wired unconditionally.
  obs::TimeSeriesRecorder idle;
  EXPECT_NE(idle.to_json().find("\"samples\": []"), std::string::npos);
}

TEST(ObsTimeSeriesTest, ObserverSeesEverySample) {
  static std::atomic<int> calls{0};
  static std::uint64_t last_seq = ~0ull;
  obs::TimeSeriesRecorder rec;
  ASSERT_TRUE(rec.start(manual_opts()));
  rec.set_observer(
      [](const obs::TsSample& s, void*) {
        calls.fetch_add(1, std::memory_order_relaxed);
        last_seq = s.seq;
      },
      nullptr);
  rec.sample_now();
  rec.sample_now();
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(last_seq, 1u);
  rec.set_observer(nullptr, nullptr);  // unregister
  rec.sample_now();
  EXPECT_EQ(calls.load(), 2);
  rec.stop();
}

TEST(ObsTimeSeriesTest, SamplerThreadTicksOnItsOwn) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeriesOptions opts;
  opts.interval_ms = 10;
  opts.depth = 64;
  opts.sampler_thread = true;
  ASSERT_TRUE(rec.start(opts));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rec.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(rec.samples_taken(), 3u);
  rec.stop();
  // Stop joins the sampler: the tick count is frozen afterwards.
  const std::uint64_t frozen = rec.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(rec.samples_taken(), frozen);
}

TEST(ObsTimeSeriesTest, SteadyStateSamplingDoesNotAllocate) {
  obs::TimeSeriesRecorder rec;
  ASSERT_TRUE(rec.start(manual_opts(/*depth=*/8)));

  // Warm-up: first ticks may touch lazily-initialized runtime state
  // (thread registries, histogram tables, the per-thread descriptor) that
  // is not the recorder's.
  tmcv::tm::var<std::uint64_t> x(0);
  tmcv::tm::atomically([&] { x.store(x.load() + 1); });
  for (int i = 0; i < 3; ++i) rec.sample_now();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 32; ++i) {
    tmcv::tm::atomically([&] { x.store(x.load() + 1); });
    rec.sample_now();
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  // The promise from timeseries.h: after warm-up, taking a sample performs
  // NO heap allocation -- ring slot reuse, preallocated baselines, scratch
  // vectors with retained capacity.  (The transactions themselves run on
  // preallocated per-thread descriptors, so the loop as a whole is clean.)
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations in 32 sample_now() calls";
  rec.stop();
}

}  // namespace
