// KV-cache server: protocol parsing, end-to-end request handling over real
// loopback sockets, pipelined batches, counters, the port-taken failure
// mode, and the embedded telemetry endpoint's app-counter export.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/kv/kv_server.h"
#include "apps/kv/protocol.h"
#include "util/net.h"

namespace tmcv::apps::kv {
namespace {

// ---- protocol.h ----

TEST(KvProtocol, ParsesEveryVerb) {
  EXPECT_EQ(parse_request("get foo").kind, OpKind::kGet);
  EXPECT_EQ(parse_request("set foo 7").kind, OpKind::kSet);
  EXPECT_EQ(parse_request("set foo 7").value, 7u);
  EXPECT_EQ(parse_request("del foo").kind, OpKind::kDel);
  EXPECT_EQ(parse_request("stats").kind, OpKind::kStats);
  EXPECT_EQ(parse_request("quit").kind, OpKind::kQuit);
}

TEST(KvProtocol, KeyHashIsStableAndVerbIndependent) {
  const std::uint64_t h = hash_key("foo");
  EXPECT_EQ(parse_request("get foo").key, h);
  EXPECT_EQ(parse_request("set foo 1").key, h);
  EXPECT_EQ(parse_request("del foo").key, h);
  EXPECT_NE(hash_key("foo"), hash_key("bar"));
}

TEST(KvProtocol, RejectsMalformedLines) {
  EXPECT_EQ(parse_request("").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("get").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("get a b").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("set foo").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("set foo abc").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("set foo 12x").kind, OpKind::kBad);
  EXPECT_EQ(parse_request("frob foo").kind, OpKind::kBad);
}

TEST(KvProtocol, ToleratesCarriageReturn) {
  EXPECT_EQ(parse_request("get foo\r").kind, OpKind::kGet);
  EXPECT_EQ(parse_request("get foo\r").key, hash_key("foo"));
}

TEST(KvProtocol, RendersResponses) {
  std::string out;
  append_value(out, 42);
  append_miss(out);
  append_stored(out);
  append_deleted(out);
  append_bad(out);
  EXPECT_EQ(out, "V 42\nM\nS\nD\nE bad\n");
  out.clear();
  append_stats(out, 1, 2, 3, 4);
  EXPECT_EQ(out, "ST hits=1 misses=2 evictions=3 size=4\n");
}

// ---- end-to-end over loopback ----

class KvClient {
 public:
  explicit KvClient(std::uint16_t port) : fd_(connect_loopback(port)) {}
  ~KvClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  // Send `lines` newline-terminated requests; read until `expect` response
  // lines arrive; return them.
  std::vector<std::string> roundtrip(const std::string& lines,
                                     std::size_t expect) {
    EXPECT_TRUE(send_all(fd_, lines.data(), lines.size()));
    std::string raw;
    std::size_t got = 0;
    char buf[4096];
    while (got < expect) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i)
        if (buf[i] == '\n') ++got;
      raw.append(buf, static_cast<std::size_t>(n));
    }
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = raw.find('\n', start);
      if (nl == std::string::npos) break;
      out.push_back(raw.substr(start, nl - start));
      start = nl + 1;
    }
    return out;
  }

 private:
  int fd_;
};

KvOptions small_options() {
  KvOptions opts;
  opts.port = 0;
  opts.workers = 2;
  opts.shards = 4;
  opts.capacity_per_shard = 64;
  opts.buckets_per_shard = 64;
  return opts;
}

TEST(KvServerTest, ServesProtocolEndToEnd) {
  KvServer server;
  ASSERT_TRUE(server.start(small_options()));
  ASSERT_GT(server.port(), 0);  // ephemeral port resolved
  KvClient client(server.port());
  ASSERT_TRUE(client.ok());
  const auto r = client.roundtrip(
      "set a 1\nset b 2\nget a\nget b\nget c\ndel a\nget a\nbogus\n", 8);
  ASSERT_EQ(r.size(), 8u);
  EXPECT_EQ(r[0], "S");
  EXPECT_EQ(r[1], "S");
  EXPECT_EQ(r[2], "V 1");
  EXPECT_EQ(r[3], "V 2");
  EXPECT_EQ(r[4], "M");
  EXPECT_EQ(r[5], "D");
  EXPECT_EQ(r[6], "M");
  EXPECT_EQ(r[7], "E bad");
  const KvCounters c = server.counters();
  EXPECT_EQ(c.gets, 4u);
  EXPECT_EQ(c.sets, 2u);
  EXPECT_EQ(c.dels, 1u);
  EXPECT_EQ(c.bad, 1u);
  EXPECT_EQ(c.connections, 1u);
  const tmds::LruStats st = server.store_stats();
  EXPECT_EQ(st.hits, 2u);    // get a, get b
  EXPECT_EQ(st.misses, 2u);  // get c, get a after del
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(KvServerTest, StatsCommandReflectsStore) {
  KvServer server;
  ASSERT_TRUE(server.start(small_options()));
  KvClient client(server.port());
  ASSERT_TRUE(client.ok());
  auto r = client.roundtrip("set x 1\nget x\nget y\nstats\n", 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[3], "ST hits=1 misses=1 evictions=0 size=1");
  server.stop();
}

TEST(KvServerTest, PipelinedWindowAnswersInOrder) {
  KvServer server;
  ASSERT_TRUE(server.start(small_options()));
  KvClient client(server.port());
  ASSERT_TRUE(client.ok());
  std::string batch;
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i)
    batch += "set k" + std::to_string(i) + " " + std::to_string(i) + "\n";
  for (int i = 0; i < kN; ++i) batch += "get k" + std::to_string(i) + "\n";
  const auto r = client.roundtrip(batch, 2 * kN);
  ASSERT_EQ(r.size(), static_cast<std::size_t>(2 * kN));
  // Ordering is per-connection FIFO: responses line up with requests even
  // though the batch spans many worker dispatches.
  bool all_stored = true;
  for (int i = 0; i < kN; ++i) all_stored = all_stored && r[i] == "S";
  EXPECT_TRUE(all_stored);
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    const std::string& resp = r[static_cast<std::size_t>(kN + i)];
    if (resp == "V " + std::to_string(i)) ++hits;
  }
  // The store holds 4 shards x 64 = 256 >= 200 entries: every get hits.
  EXPECT_EQ(hits, kN);
  server.stop();
}

TEST(KvServerTest, ConcurrentClientsSeeConsistentCounters) {
  KvServer server;
  ASSERT_TRUE(server.start(small_options()));
  constexpr int kClients = 4;
  constexpr int kOpsPer = 100;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      KvClient client(server.port());
      ASSERT_TRUE(client.ok());
      std::string batch;
      for (int i = 0; i < kOpsPer; ++i) {
        const std::string key =
            "c" + std::to_string(c) + "k" + std::to_string(i % 16);
        batch += (i % 2 == 0 ? "set " + key + " 1\n" : "get " + key + "\n");
      }
      const auto r = client.roundtrip(batch, kOpsPer);
      EXPECT_EQ(r.size(), static_cast<std::size_t>(kOpsPer));
    });
  }
  for (auto& t : threads) t.join();
  const KvCounters counters = server.counters();
  EXPECT_EQ(counters.gets + counters.sets,
            static_cast<std::uint64_t>(kClients) * kOpsPer);
  EXPECT_EQ(counters.connections, static_cast<std::uint64_t>(kClients));
  // Transactional store counters agree with the request tally exactly.
  const tmds::LruStats st = server.store_stats();
  EXPECT_EQ(st.hits + st.misses, counters.gets);
  server.stop();
}

TEST(KvServerTest, QuitClosesTheConnection) {
  KvServer server;
  ASSERT_TRUE(server.start(small_options()));
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const char req[] = "set a 1\nquit\nget a\n";
  ASSERT_TRUE(send_all(fd, req, sizeof req - 1));
  // One "S" response, then EOF -- the get after quit is never answered.
  std::string raw;
  char buf[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(raw, "S\n");
  ::close(fd);
  server.stop();
}

TEST(KvServerTest, TakenPortFailsLoudly) {
  KvServer first;
  KvOptions opts = small_options();
  ASSERT_TRUE(first.start(opts));
  KvServer second;
  opts.port = first.port();  // now occupied
  errno = 0;
  EXPECT_FALSE(second.start(opts));
  EXPECT_EQ(errno, EADDRINUSE);
  EXPECT_FALSE(second.running());
  first.stop();
}

TEST(KvServerTest, RejectsInvalidOptions) {
  KvServer server;
  KvOptions opts = small_options();
  opts.shards = 3;  // not a power of two
  errno = 0;
  EXPECT_FALSE(server.start(opts));
  EXPECT_EQ(errno, EINVAL);
  opts = small_options();
  opts.workers = 0;
  EXPECT_FALSE(server.start(opts));
}

TEST(KvServerTest, MetricsEndpointExportsAppCounters) {
  KvServer server;
  KvOptions opts = small_options();
  opts.metrics_port = 0;
  ASSERT_TRUE(server.start(opts));
  ASSERT_GT(server.metrics_port(), 0);
  {
    KvClient client(server.port());
    ASSERT_TRUE(client.ok());
    client.roundtrip("set a 1\nget a\n", 2);
  }
  // Raw HTTP GET against the embedded telemetry endpoint; the snapshot pump
  // may not have ticked yet, so scrape the JSON exporter directly through
  // a fresh snapshot request until the counters appear.
  std::string body;
  for (int attempt = 0; attempt < 50 && body.find("\"kv_get\": 1") ==
                                            std::string::npos;
       ++attempt) {
    const int fd = connect_loopback(server.metrics_port());
    ASSERT_GE(fd, 0);
    const char req[] = "GET /metrics.json HTTP/1.0\r\n\r\n";
    ASSERT_TRUE(send_all(fd, req, sizeof req - 1));
    body.clear();
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      body.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(body.find("\"app\""), std::string::npos);
  EXPECT_NE(body.find("\"kv_get\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"kv_set\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"kv_hits\": 1"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace tmcv::apps::kv
