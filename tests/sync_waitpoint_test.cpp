// Wait-point registry: publish/clear pairing on the park paths, the
// WaitScope nesting guard, the runtime enable switch, and the stall
// table's two-ledger exactness under concurrent wakers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/locks.h"
#include "sync/semaphore.h"
#include "sync/waitpoint.h"
#include "util/backoff.h"

namespace tmcv {
namespace {

// Scan the registry for a slot currently published as (reason, target).
// Returns nullptr if none; retried by callers because publish races the
// scan by design.
WaitSlot* find_published(WaitReason reason, const void* target) {
  WaitSlot* slots = detail::wait_slots();
  const std::uint32_t n = wait_slot_high_water();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t seq = slots[i].seq.load(std::memory_order_acquire);
    if ((seq & 1) == 0) continue;
    const std::uint64_t info = slots[i].info.load(std::memory_order_relaxed);
    if (wait_info_reason(info) == reason &&
        slots[i].target.load(std::memory_order_relaxed) == target)
      return &slots[i];
  }
  return nullptr;
}

std::uint64_t sum_cells(const std::uint64_t (*cells)[kStallSiteSlots]) {
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < kWaitReasonCount; ++r)
    for (std::uint32_t s = 0; s < kStallSiteSlots; ++s) sum += cells[r][s];
  return sum;
}

TEST(WaitPoint, ScopePublishesAndClears) {
  int dummy = 0;
  std::atomic<WaitSlot*> published{nullptr};
  std::atomic<bool> release{false};
  std::thread t([&] {
    WaitScope wp(WaitReason::kOrec, &dummy, /*site=*/3, /*detail=*/7);
    ASSERT_NE(wp.slot(), nullptr);
    published.store(wp.slot(), std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (published.load(std::memory_order_acquire) == nullptr)
    std::this_thread::yield();
  WaitSlot* s = published.load();
  const std::uint64_t seq = s->seq.load(std::memory_order_acquire);
  EXPECT_EQ(seq & 1, 1u) << "slot must carry an odd seq while parked";
  const std::uint64_t info = s->info.load(std::memory_order_relaxed);
  EXPECT_EQ(wait_info_reason(info), WaitReason::kOrec);
  EXPECT_EQ(wait_info_site(info), 3u);
  EXPECT_EQ(wait_info_detail(info), 7u);
  EXPECT_EQ(s->target.load(std::memory_order_relaxed), &dummy);
  EXPECT_NE(s->os_tid.load(std::memory_order_relaxed), 0u);
  release.store(true, std::memory_order_release);
  t.join();
  // The scope cleared the slot on exit; the thread has not re-parked.
  EXPECT_EQ(s->seq.load(std::memory_order_acquire), 0u);
}

TEST(WaitPoint, NestedScopeIsInertAndKeepsOuterPublish) {
  int outer_target = 0, inner_target = 0;
  std::thread t([&] {
    WaitScope outer(WaitReason::kCondVar, &outer_target, /*site=*/5);
    ASSERT_NE(outer.slot(), nullptr);
    const std::uint64_t outer_seq =
        outer.slot()->seq.load(std::memory_order_acquire);
    {
      WaitScope inner(WaitReason::kSemaphore, &inner_target);
      EXPECT_EQ(inner.slot(), nullptr) << "inner scope must not claim";
      // The outer publish is untouched: same episode, same payload.
      EXPECT_EQ(outer.slot()->seq.load(std::memory_order_acquire),
                outer_seq);
      EXPECT_EQ(wait_info_reason(
                    outer.slot()->info.load(std::memory_order_relaxed)),
                WaitReason::kCondVar);
    }
    // Inner dtor must not clear the slot either.
    EXPECT_EQ(outer.slot()->seq.load(std::memory_order_acquire), outer_seq);
    EXPECT_EQ(outer.slot()->target.load(std::memory_order_relaxed),
              &outer_target);
  });
  t.join();
}

TEST(WaitPoint, DisableSwitchMakesScopesInert) {
  set_waitpoints_enabled(false);
  {
    WaitScope wp(WaitReason::kCondVar, nullptr);
    EXPECT_EQ(wp.slot(), nullptr);
  }
  set_waitpoints_enabled(true);
  {
    WaitScope wp(WaitReason::kCondVar, nullptr);
    EXPECT_NE(wp.slot(), nullptr);
  }
}

TEST(WaitPoint, CondVarWaitPublishesWhileParked) {
  CondVar cv;
  std::mutex m;
  std::thread waiter([&] {
    m.lock();
    LockSync sync(m);
    cv.wait(sync);
    m.unlock();
  });
  // The park path must publish (kCondVar, &cv) before sleeping...
  WaitSlot* s = nullptr;
  while ((s = find_published(WaitReason::kCondVar, &cv)) == nullptr)
    std::this_thread::yield();
  EXPECT_EQ(wait_info_reason(s->info.load(std::memory_order_relaxed)),
            WaitReason::kCondVar);
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();
  waiter.join();
  // ...and clear on wake: the pairing leaves nothing published.
  EXPECT_EQ(find_published(WaitReason::kCondVar, &cv), nullptr);
}

TEST(WaitPoint, SemaphoreParkPublishesWhileParked) {
  Semaphore sem;
  std::thread waiter([&] { sem.wait(); });
  WaitSlot* s = nullptr;
  while ((s = find_published(WaitReason::kSemaphore, &sem)) == nullptr)
    std::this_thread::yield();
  EXPECT_EQ(s->target.load(std::memory_order_relaxed), &sem);
  sem.post();
  waiter.join();
  EXPECT_EQ(find_published(WaitReason::kSemaphore, &sem), nullptr);
}

TEST(WaitPoint, ForeignSiteFoldsToUnattributed) {
  reset_stall_table();
  { WaitScope wp(WaitReason::kCondVar, nullptr, /*site=*/300); }
  static std::uint64_t cells[kWaitReasonCount][kStallSiteSlots];
  const std::uint64_t total = snapshot_stall(cells);
  EXPECT_EQ(sum_cells(cells), total);
  // Site 300 is outside the table; its ticks land in site 0.
  EXPECT_EQ(cells[static_cast<std::uint32_t>(WaitReason::kCondVar)][0],
            total);
  EXPECT_GT(total, 0u);
}

// The exactness invariant this whole table exists for: sum(cells) ==
// total for EVERY snapshot taken while four threads are folding park
// episodes in concurrently -- not just after they quiesce.
TEST(WaitPoint, StallTableExactUnderConcurrentWriters) {
  reset_stall_table();
  constexpr int kWriters = 4;
  constexpr int kEpisodes = 4000;
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      int target = 0;
      for (int i = 0; i < kEpisodes; ++i) {
        WaitScope wp(static_cast<WaitReason>(1 + (i + w) % 6), &target,
                     static_cast<std::uint16_t>(i % kStallSiteSlots));
        // A little busy-work so deltas are nonzero and episodes overlap.
        for (int spin = 0; spin < 8; ++spin) cpu_relax();
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  static std::uint64_t cells[kWaitReasonCount][kStallSiteSlots];
  go.store(true, std::memory_order_release);
  std::uint64_t last_total = 0;
  int snapshots = 0;
  while (done.load(std::memory_order_acquire) != kWriters) {
    const std::uint64_t total = snapshot_stall(cells);
    ASSERT_EQ(sum_cells(cells), total)
        << "two-ledger invariant broke mid-traffic (snapshot "
        << snapshots << ")";
    ASSERT_GE(total, last_total) << "stall total went backwards";
    last_total = total;
    ++snapshots;
  }
  for (auto& t : writers) t.join();
  const std::uint64_t total = snapshot_stall(cells);
  EXPECT_EQ(sum_cells(cells), total);
  EXPECT_GT(total, 0u);
  EXPECT_GT(snapshots, 0);
}

}  // namespace
}  // namespace tmcv
