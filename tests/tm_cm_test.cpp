// Contention management: the GV4 pass-on-failure commit clock, the polite
// orec wait in lazy commit, conflict-streak serial escalation (and recovery
// after the contention clears), abort-reason accounting, and the HTM
// attempt-budget hysteresis.
#include <gtest/gtest.h>

#include "backend_fixture.h"  // orec/HTM-specific: pin the eager default

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/clock.h"
#include "tm/cm.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

// Restores the conflict-streak knob even when an ASSERT unwinds the test.
struct StreakLimitGuard {
  std::uint32_t saved = cm_conflict_streak_limit();
  ~StreakLimitGuard() { cm_set_conflict_streak_limit(saved); }
};

TEST(TmCm, Gv4ClockInvariants) {
  // Hammer a private clock from 8 threads.  GV4 gives up global uniqueness
  // for adopted ticks, but must keep: (a) per-thread commit timestamps
  // strictly increasing, (b) ticks a thread won itself globally unique,
  // (c) the clock's final value equal to the number of won ticks (only a
  // successful CAS advances it).
  VersionClock clock;
  constexpr int kThreads = 8;
  constexpr int kTicks = 4000;
  std::vector<std::vector<VersionClock::Tick>> seen(kThreads);
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kTicks);
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kTicks; ++i) seen[t].push_back(clock.tick());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> won;
  std::uint64_t won_count = 0;
  for (const auto& v : seen) {
    for (std::size_t i = 1; i < v.size(); ++i)
      ASSERT_LT(v[i - 1].time, v[i].time);
    for (const VersionClock::Tick& t : v) {
      if (t.reused) continue;
      ++won_count;
      won.insert(t.time);
    }
  }
  EXPECT_EQ(won.size(), won_count);
  EXPECT_EQ(clock.now(), won_count);
}

TEST(TmCm, ForcedConflictNoLivelockAndReasonsSum) {
  // 8 threads increment ONE variable: worst-case write-write contention.
  // Every increment must land (no lost updates, no livelock) and the
  // abort-reason breakdown must account for every abort.
  stats_reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 300;
  var<std::uint64_t> x(0);
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIncrements; ++i)
        atomically(Backend::LazySTM, [&] { x.store(x.load() + 1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(x.load(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  const Stats s = stats_snapshot();
  EXPECT_EQ(s.aborts, s.aborts_conflict + s.aborts_capacity +
                          s.aborts_syscall + s.aborts_explicit +
                          s.aborts_retry_wait);
  EXPECT_EQ(s.aborts_capacity, 0u);
  EXPECT_EQ(s.aborts_syscall, 0u);
}

TEST(TmCm, SerialEscalationAfterKConflictsAndRecovery) {
  // A holder parks inside an eager transaction with x's stripe locked; the
  // victim's attempts take conflict aborts until the streak limit trips and
  // it escalates to the serial lock (long before the 64-attempt budget).
  // Once the holder leaves, the victim completes serially -- and after the
  // contention clears, further transactions run optimistically again.
  StreakLimitGuard guard;
  cm_set_conflict_streak_limit(4);
  stats_reset();
  var<std::uint64_t> x(0);
  std::atomic<bool> holder_in_txn{false};
  std::atomic<bool> release_holder{false};
  std::thread holder([&] {
    atomically(Backend::EagerSTM, [&] {
      x.store(1);  // eager: locks x's stripe until commit
      holder_in_txn.store(true);
      while (!release_holder.load()) std::this_thread::yield();
    });
  });
  while (!holder_in_txn.load()) std::this_thread::yield();
  std::thread victim([&] {
    atomically(Backend::EagerSTM, [&] { x.store(x.load() + 1); });
    // Recovery: the streak was cleared by the commit, so uncontended
    // follow-ups stay optimistic.
    for (int i = 0; i < 8; ++i)
      atomically(Backend::EagerSTM, [&] { x.store(x.load() + 1); });
  });
  // The victim cannot finish until the holder leaves; wait for its streak
  // to trip the escalation counter, then release the holder.
  while (stats_snapshot().cm_serial_escalations == 0)
    std::this_thread::yield();
  release_holder.store(true);
  holder.join();
  victim.join();
  EXPECT_EQ(x.load(), 10u);
  const Stats s = stats_snapshot();
  EXPECT_GE(s.aborts_conflict, 4u);
  EXPECT_EQ(s.cm_serial_escalations, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);  // recovery ran optimistically
}

TEST(TmCm, PoliteWaitTurnsLockedOrecIntoBoundedWait) {
  // Lazy commit meeting a locked orec first waits politely (cm_waits) for
  // the holder to finish instead of aborting on sight.
  stats_reset();
  var<std::uint64_t> x(0);
  std::atomic<bool> holder_in_txn{false};
  std::atomic<bool> release_holder{false};
  std::thread holder([&] {
    atomically(Backend::EagerSTM, [&] {
      x.store(1);
      holder_in_txn.store(true);
      while (!release_holder.load()) std::this_thread::yield();
    });
  });
  while (!holder_in_txn.load()) std::this_thread::yield();
  std::thread victim([&] {
    // Blind write: lazy logs it without touching the orec, so the first
    // collision with the holder's lock happens inside commit_lazy -- the
    // polite-wait path under test.  (A read would conflict-abort earlier.)
    atomically(Backend::LazySTM, [&] { x.store(2); });
  });
  while (stats_snapshot().cm_waits == 0) std::this_thread::yield();
  release_holder.store(true);
  holder.join();
  victim.join();
  // The victim cannot acquire x's stripe before the holder commits, so its
  // blind write serializes after the holder's x=1.
  EXPECT_EQ(x.load(), 2u);
  EXPECT_GE(stats_snapshot().cm_waits, 1u);
}

TEST(TmCm, ExplicitAbortsDoNotFeedTheConflictStreak) {
  // retry_txn() is user-directed, not contention: even with a tiny streak
  // limit it must not push the transaction into the serial lock.
  StreakLimitGuard guard;
  cm_set_conflict_streak_limit(2);
  stats_reset();
  var<int> x(0);
  int attempts = 0;
  atomically(Backend::EagerSTM, [&] {
    x.store(attempts);
    if (++attempts <= 10) retry_txn();
  });
  EXPECT_EQ(x.load(), 10);
  const Stats s = stats_snapshot();
  EXPECT_EQ(s.aborts_explicit, 10u);
  EXPECT_EQ(s.serial_fallbacks, 0u);
  EXPECT_EQ(s.cm_serial_escalations, 0u);
}

TEST(TmCm, HtmHysteresisShrinksAndRecovers) {
  // Fallback pressure halves the hardware attempt budget down to a floor of
  // one; sustained hardware commits decay it back one level per
  // kHtmRecoveryCommits; stats_reset restores the full budget outright.
  stats_reset();
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial);
  note_htm_fallback();
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial / 2);
  note_htm_fallback();
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial / 4);
  note_htm_fallback();
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial / 8);
  note_htm_fallback();  // saturates at the floor
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial / 8);
  for (int level = 3; level > 0; --level) {
    for (int i = 0; i < 64; ++i) note_htm_commit();
    EXPECT_EQ(htm_attempt_budget(),
              kHtmAttemptsBeforeSerial >> (level - 1));
  }
  note_htm_fallback();
  stats_reset();
  EXPECT_EQ(htm_attempt_budget(), kHtmAttemptsBeforeSerial);
}

}  // namespace
}  // namespace tmcv::tm
