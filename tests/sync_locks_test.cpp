// Mutual-exclusion tests for every lock in sync/locks.h, plus LockSync
// context behaviour.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "sync/locks.h"
#include "sync/sync_context.h"

namespace tmcv {
namespace {

// Hammer a plain counter under the lock; any mutual-exclusion failure shows
// up as a lost update.
template <typename Lock>
void expect_mutual_exclusion() {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  Lock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(TasLock, MutualExclusion) { expect_mutual_exclusion<TasLock>(); }
TEST(TicketLock, MutualExclusion) { expect_mutual_exclusion<TicketLock>(); }
TEST(FutexLock, MutualExclusion) { expect_mutual_exclusion<FutexLock>(); }

TEST(McsLock, MutualExclusion) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  McsLock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        McsLock::Guard guard(lock);
        counter = counter + 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(TasLock, TryLockSemantics) {
  TasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(FutexLock, TryLockSemantics) {
  FutexLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, TryLockSemantics) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(FutexLock, ComposesWithUniqueLock) {
  FutexLock lock;
  {
    std::unique_lock<FutexLock> guard(lock);
    EXPECT_TRUE(guard.owns_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(LockSync, ReleasesAndReacquiresSingleLock) {
  std::mutex m;
  m.lock();
  LockSync sync(m);
  EXPECT_FALSE(sync.is_transactional());
  sync.end_block();
  EXPECT_TRUE(m.try_lock());  // sync released it
  m.unlock();
  sync.begin_block();
  EXPECT_FALSE(m.try_lock());  // sync re-acquired it
  m.unlock();
}

TEST(LockSync, NestedLocksReleasedInnermostFirst) {
  // Track release order via a log.
  struct LoggingLock {
    std::vector<int>* log;
    int id;
    void lock() { log->push_back(+id); }
    void unlock() { log->push_back(-id); }
  };
  std::vector<int> log;
  LoggingLock outer{&log, 1}, inner{&log, 2};
  LockSync sync;
  sync.push(LockRef::of(outer));
  sync.push(LockRef::of(inner));
  sync.end_block();    // expect unlock inner (-2) then outer (-1)
  sync.begin_block();  // expect lock outer (+1) then inner (+2)
  const std::vector<int> expected{-2, -1, +1, +2};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(sync.lock_count(), 2u);
}

TEST(NoSync, IsANoOp) {
  NoSync sync;
  EXPECT_FALSE(sync.is_transactional());
  sync.end_block();
  sync.begin_block();
  SUCCEED();
}

}  // namespace
}  // namespace tmcv
