// Timed waits (the POSIX-compatibility extension) and punctuated
// transactions (the §6 generalization the WAIT algorithm specializes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "tm/api.h"
#include "tm/var.h"

namespace tmcv {
namespace {

using namespace std::chrono_literals;
using tm::Backend;

TEST(CondVarTimed, TimesOutWhenNobodyNotifies) {
  CondVar cv;
  NoSync sync;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(cv.wait_for(sync, 30ms));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 25ms);
  // The timed-out node must have been removed: a later notify finds nobody.
  EXPECT_EQ(cv.waiter_count(), 0u);
  EXPECT_FALSE(cv.notify_one());
}

TEST(CondVarTimed, ReturnsTrueWhenNotifiedInTime) {
  CondVar cv;
  std::atomic<bool> result{false};
  std::thread waiter([&] {
    NoSync sync;
    result.store(cv.wait_for(sync, 10s));
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  EXPECT_TRUE(cv.notify_one());
  waiter.join();
  EXPECT_TRUE(result.load());
}

TEST(CondVarTimed, TimeoutReleasesAndReacquiresLock) {
  CondVar cv;
  std::mutex m;
  std::atomic<bool> lock_was_free{false};
  std::thread waiter([&] {
    m.lock();
    LockSync sync(m);
    EXPECT_FALSE(cv.wait_for(sync, 40ms));
    // Returned with the lock re-acquired.
    EXPECT_FALSE(m.try_lock());
    m.unlock();
  });
  // While the waiter sleeps, the lock must be available to others.
  std::this_thread::sleep_for(10ms);
  if (m.try_lock()) {
    lock_was_free.store(true);
    m.unlock();
  }
  waiter.join();
  EXPECT_TRUE(lock_was_free.load());
}

TEST(CondVarTimed, RepeatedTimeoutsLeaveQueueConsistent) {
  CondVar cv;
  NoSync sync;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(cv.wait_for(sync, 1ms));
  EXPECT_EQ(cv.waiter_count(), 0u);
  // The node is reusable for a normal wait afterwards.
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    NoSync s2;
    cv.wait_final(s2);
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CondVarTimed, NotifyRacingTimeoutNeverLosesToken) {
  // Hammer the timeout/notify race: every notify that selected a waiter
  // must be observed as a successful (true) wait, and every timeout must
  // leave the queue empty.  Token conservation is checked exactly.
  CondVar cv;
  std::atomic<int> true_waits{0};
  std::atomic<int> notified_count{0};
  constexpr int kRounds = 300;
  std::thread waiter([&] {
    NoSync sync;
    for (int i = 0; i < kRounds; ++i) {
      // Tiny timeout so both outcomes occur frequently.
      if (cv.wait_for(sync, std::chrono::microseconds(50)))
        true_waits.fetch_add(1);
    }
  });
  std::thread notifier([&] {
    for (int i = 0; i < kRounds; ++i) {
      if (cv.notify_one()) notified_count.fetch_add(1);
      std::this_thread::yield();
    }
  });
  waiter.join();
  notifier.join();
  // Every successful notify paired with exactly one true wait.
  EXPECT_EQ(true_waits.load(), notified_count.load());
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(LegacyCvTimed, StdStyleWaitForWithPredicate) {
  condition_variable cv;
  std::mutex m;
  bool flag = false;
  {
    std::unique_lock<std::mutex> lk(m);
    EXPECT_FALSE(cv.wait_for(lk, 20ms, [&] { return flag; }));
  }
  std::thread setter([&] {
    std::this_thread::sleep_for(10ms);
    {
      std::lock_guard<std::mutex> g(m);
      flag = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(m);
  EXPECT_TRUE(cv.wait_for(lk, 10s, [&] { return flag; }));
  lk.unlock();
  setter.join();
}

class TimedTx : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override { tm::set_default_backend(Backend::EagerSTM); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, TimedTx,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

TEST_P(TimedTx, TimedWaitInsideTransaction) {
  tx_condition_variable cv;
  tm::var<int> x(0);
  std::thread waiter([&] {
    tm::atomically([&] {
      x.store(1);
      const bool notified = cv.wait_for_tx(30ms);
      // Timed out; the continuation still runs (irrevocably) and can write.
      EXPECT_FALSE(notified);
      x.store(2);
    });
  });
  waiter.join();
  EXPECT_EQ(x.load(), 2);
  EXPECT_EQ(cv.raw().waiter_count(), 0u);
}

TEST_P(TimedTx, PunctuateRunsBetweenOutsideTransaction) {
  tm::var<int> x(0);
  bool between_ran = false;
  tm::atomically([&] {
    x.store(1);
    tm::punctuate([&] {
      EXPECT_FALSE(tm::in_txn());
      // The first half is already committed and visible.
      EXPECT_EQ(x.load_plain(), 1);
      between_ran = true;
    });
    EXPECT_TRUE(tm::in_txn());
    EXPECT_EQ(tm::descriptor().state(), tm::TxState::Serial);
    x.store(2);
  });
  EXPECT_TRUE(between_ran);
  EXPECT_EQ(x.load(), 2);
}

TEST_P(TimedTx, PunctuateOptimisticResume) {
  tm::var<int> x(0);
  tm::atomically([&] {
    x.store(1);
    tm::punctuate([] {}, /*irrevocable_resume=*/false);
    EXPECT_EQ(tm::descriptor().state(), tm::TxState::Optimistic);
    x.store(2);
  });
  EXPECT_EQ(x.load(), 2);
}

TEST_P(TimedTx, PunctuateCanBlockInBetween) {
  // The `between` section may sleep on a semaphore -- WAIT is exactly this.
  tm::var<int> x(0);
  BinarySemaphore sem;
  std::thread poster([&] {
    std::this_thread::sleep_for(5ms);
    sem.post();
  });
  tm::atomically([&] {
    x.store(1);
    tm::punctuate([&] { sem.wait(); });
    x.store(x.load() + 1);
  });
  poster.join();
  EXPECT_EQ(x.load(), 2);
}

}  // namespace
}  // namespace tmcv
