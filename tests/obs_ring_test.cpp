// Trace-ring unit tests: wraparound, overflow-drop accounting, multi-thread
// serialization order, and the runtime gates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs = tmcv::obs;

namespace {

// Flags are process-wide; restore them after every test.
class ObsRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::set_timing_enabled(false);
    obs::trace_reset();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::set_timing_enabled(false);
    obs::trace_reset();
  }
};

TEST_F(ObsRingTest, PushAndSnapshotPreserveOrder) {
  obs::TraceRing ring(/*tid=*/99, /*capacity=*/8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.push(obs::Event::kCvNotify, /*ts=*/100 + i, /*dur=*/0,
              static_cast<std::uint16_t>(i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.total_pushed(), 5u);

  std::vector<obs::TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].ts, 100 + i);
    EXPECT_EQ(out[i].arg, i);
  }
}

TEST_F(ObsRingTest, WraparoundKeepsMostRecentAndCountsDrops) {
  obs::TraceRing ring(/*tid=*/1, /*capacity=*/8);
  const std::uint64_t total = 21;
  for (std::uint64_t i = 0; i < total; ++i)
    ring.push(obs::Event::kSemPost, /*ts=*/i, /*dur=*/0, 0);

  EXPECT_EQ(ring.size(), 8u);             // capped at capacity
  EXPECT_EQ(ring.dropped(), total - 8);   // everything older was overwritten
  EXPECT_EQ(ring.total_pushed(), total);

  // The retained window is exactly the most recent `capacity` events,
  // oldest first.
  std::vector<obs::TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].ts, total - 8 + i);
}

TEST_F(ObsRingTest, NonPowerOfTwoCapacityRoundsDown) {
  obs::TraceRing ring(/*tid=*/1, /*capacity=*/13);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST_F(ObsRingTest, ClearResets) {
  obs::TraceRing ring(/*tid=*/1, /*capacity=*/4);
  for (int i = 0; i < 9; ++i) ring.push(obs::Event::kSemPost, 1, 0, 0);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(ObsRingTest, DisabledHooksCaptureNothing) {
  const obs::TraceCounts before = obs::trace_counts();
  obs::emit_instant(obs::Event::kSemPost);
  (void)obs::emit_complete(obs::Event::kSemWait, /*t0=*/12345);
  EXPECT_EQ(obs::region_begin(), 0u);  // layer off -> sentinel timestamp
  const obs::TraceCounts after = obs::trace_counts();
  EXPECT_EQ(after.recorded, before.recorded);
  EXPECT_EQ(after.dropped, before.dropped);
}

TEST_F(ObsRingTest, EnabledHooksCapture) {
  obs::set_trace_enabled(true);
  const std::uint64_t t0 = obs::region_begin();
  ASSERT_NE(t0, 0u);
  (void)obs::emit_complete(obs::Event::kSemWait, t0, /*arg=*/7);
  obs::emit_instant(obs::Event::kSemPost, /*arg=*/3);
  obs::set_trace_enabled(false);

  const std::vector<obs::TaggedEvent> all = obs::collect_trace_sorted();
  ASSERT_GE(all.size(), 2u);
  bool saw_wait = false;
  bool saw_post = false;
  for (const obs::TaggedEvent& e : all) {
    if (e.event.type == static_cast<std::uint16_t>(obs::Event::kSemWait) &&
        e.event.arg == 7)
      saw_wait = true;
    if (e.event.type == static_cast<std::uint16_t>(obs::Event::kSemPost) &&
        e.event.arg == 3)
      saw_post = true;
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_post);
}

TEST_F(ObsRingTest, MultiThreadEventsSerializeInTimestampOrder) {
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::emit_instant(obs::Event::kCvNotify,
                          static_cast<std::uint16_t>(t));
    });
  }
  for (auto& th : threads) th.join();
  obs::set_trace_enabled(false);

  const std::vector<obs::TaggedEvent> all = obs::collect_trace_sorted();
  // Other machinery in the process may have traced too; our events alone
  // must all be present...
  std::size_t ours = 0;
  for (const obs::TaggedEvent& e : all)
    if (e.event.type == static_cast<std::uint16_t>(obs::Event::kCvNotify))
      ++ours;
  EXPECT_EQ(ours, static_cast<std::size_t>(kThreads * kPerThread));
  // ...the merged stream must be globally sorted by timestamp...
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const obs::TaggedEvent& a,
                                const obs::TaggedEvent& b) {
                               return a.event.ts < b.event.ts;
                             }));
  // ...and each thread's own events must appear in their emission order
  // (per-ring order is preserved; ts ties cannot reorder a single ring
  // because the sort is stable over oldest-first snapshots).
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i].tid == all[i - 1].tid) {
      EXPECT_GE(all[i].event.ts, all[i - 1].event.ts);
    }
  }
}

}  // namespace
