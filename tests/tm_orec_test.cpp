// Unit tests for the TM runtime's low-level pieces: orec encoding and
// striping, the version clock, and the thread registry.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/clock.h"
#include "tm/descriptor.h"
#include "tm/orec.h"
#include "tm/registry.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

// Run one committing transaction on the calling thread.
void run_one_commit() {
  var<int> x(0);
  atomically(Backend::EagerSTM, [&] { x.store(1); });
}

TEST(Orec, EncodingRoundTrips) {
  for (std::uint64_t v : {0ull, 1ull, 42ull, (1ull << 40)}) {
    const OrecWord w = make_version(v);
    EXPECT_FALSE(orec_is_locked(w));
    EXPECT_EQ(orec_version(w), v);
  }
  for (std::uint64_t slot : {0ull, 7ull, 511ull}) {
    const OrecWord w = make_locked(slot);
    EXPECT_TRUE(orec_is_locked(w));
    EXPECT_EQ(orec_owner_slot(w), slot);
  }
}

TEST(Orec, MappingIsDeterministic) {
  int x = 0;
  EXPECT_EQ(&orec_for(&x), &orec_for(&x));
}

TEST(Orec, NearbyWordsSpread) {
  // Adjacent 8-byte words should rarely share a stripe.
  std::uint64_t words[64];
  std::set<const Orec*> stripes;
  for (auto& w : words) stripes.insert(&orec_for(&w));
  EXPECT_GT(stripes.size(), 48u);  // near-perfect spread expected
}

TEST(Orec, TableIsZeroInitialized) {
  // A fresh stripe reads as unlocked version <= current clock.
  const OrecWord w = orec_at(12345).load();
  if (!orec_is_locked(w)) {
    EXPECT_LE(orec_version(w), global_clock().now());
  }
}

TEST(VersionClock, TickIsMonotonicAndUnique) {
  // Uncontended ticks always win their CAS: strictly increasing, never
  // adopted from another committer.
  VersionClock& clock = global_clock();
  const VersionClock::Tick a = clock.tick();
  const VersionClock::Tick b = clock.tick();
  EXPECT_FALSE(a.reused);
  EXPECT_FALSE(b.reused);
  EXPECT_LT(a.time, b.time);
  EXPECT_GE(clock.now(), b.time);
}

TEST(VersionClock, ConcurrentTicksGv4Invariants) {
  // GV4 pass-on-failure weakens global uniqueness -- a losing committer
  // adopts the winner's timestamp -- but keeps what validation relies on:
  // ticks a thread *won* are globally unique, and every thread's sequence
  // of commit timestamps is still strictly increasing (an adopted value
  // comes from a CAS that observed something >= our previous stamp).
  VersionClock& clock = global_clock();
  constexpr int kThreads = 4;
  constexpr int kTicks = 2000;
  std::vector<std::vector<VersionClock::Tick>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kTicks);
      for (int i = 0; i < kTicks; ++i) seen[t].push_back(clock.tick());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> won;
  std::size_t won_count = 0;
  for (const auto& v : seen) {
    for (std::size_t i = 1; i < v.size(); ++i)
      ASSERT_LT(v[i - 1].time, v[i].time);
    for (const VersionClock::Tick& t : v) {
      if (t.reused) continue;
      ++won_count;
      won.insert(t.time);
    }
  }
  EXPECT_EQ(won.size(), won_count);  // non-adopted ticks globally unique
  EXPECT_GE(clock.now(), *won.rbegin());
}

TEST(Registry, ThreadsGetDistinctSlots) {
  // Each thread's descriptor occupies its own slot while alive.
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> slots(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      slots[t] = descriptor().slot();
      ready.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  std::set<std::uint64_t> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  release.store(true);
  for (auto& th : threads) th.join();
}

TEST(Registry, SlotsAreRecycledAfterThreadExit) {
  std::uint64_t first_slot = 0;
  std::thread t1([&] { first_slot = descriptor().slot(); });
  t1.join();
  // The slot is free again; a new thread can claim a slot no larger than
  // the high-water mark grew to.
  std::uint64_t second_slot = kMaxThreads;
  std::thread t2([&] { second_slot = descriptor().slot(); });
  t2.join();
  EXPECT_LE(second_slot, registry().high_water());
  EXPECT_LT(second_slot, kMaxThreads);
}

TEST(Registry, DescriptorPoolSurvivesThreadChurn) {
  // Many short-lived threads: descriptors must recycle cleanly (no slot
  // leaks, no crashes in cross-thread scans racing the churn).
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    // Simulates the serial lock / epoch collector reading descriptors
    // while threads come and go.
    while (!stop.load()) {
      const std::uint64_t n = registry().high_water();
      for (std::uint64_t s = 0; s < n; ++s) {
        if (const TxDescriptor* d = registry().descriptor(s))
          (void)d->activity();
      }
    }
  });
  for (int round = 0; round < 30; ++round) {
    std::vector<std::thread> burst;
    for (int t = 0; t < 8; ++t)
      burst.emplace_back([] { run_one_commit(); });
    for (auto& th : burst) th.join();
  }
  stop.store(true);
  scanner.join();
  // High-water mark stays bounded by the peak concurrency, not the total
  // thread count -- proof the pool recycles.
  EXPECT_LT(registry().high_water(), 64u);
}

TEST(Registry, RetiredStatsSurviveThreadExit) {
  stats_reset();
  std::thread t([] { run_one_commit(); });
  t.join();
  // The thread's descriptor is gone; its counters must have been folded
  // into the retired accumulator.
  EXPECT_GE(stats_snapshot().commits, 1u);
}

}  // namespace
}  // namespace tmcv::tm
