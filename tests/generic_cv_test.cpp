// Tests for the Algorithm 2 reference implementation (GenericCondVar):
// the spec-level object the practical queue implementation refines.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "core/generic_cv.h"
#include "sync/sync_context.h"

namespace tmcv {
namespace {

TEST(GenericCv, NotifyOnEmptySetIsNoOp) {
  GenericCondVar<4> cv;
  EXPECT_EQ(cv.notify_one(), GenericCondVar<4>::kInvalid);
  EXPECT_EQ(cv.notify_all(), 0u);
}

TEST(GenericCv, WaitStep1SetsFlagAndInsertsIntoQueue) {
  GenericCondVar<4> cv;
  cv.wait_step1(2);
  EXPECT_TRUE(cv.spin_flag(2));
  EXPECT_TRUE(cv.in_queue(2));
  // Invariant 3 shape: in Q implies spin set.
  cv.notify_one();
  EXPECT_FALSE(cv.in_queue(2));
  EXPECT_FALSE(cv.spin_flag(2));
}

TEST(GenericCv, NotifyOneRemovesExactlyOne) {
  GenericCondVar<4> cv;
  cv.wait_step1(0);
  cv.wait_step1(1);
  cv.wait_step1(2);
  const std::size_t victim = cv.notify_one();
  ASSERT_NE(victim, GenericCondVar<4>::kInvalid);
  EXPECT_FALSE(cv.in_queue(victim));
  EXPECT_FALSE(cv.spin_flag(victim));
  std::size_t still_queued = 0;
  for (std::size_t p = 0; p < 3; ++p)
    if (cv.in_queue(p)) ++still_queued;
  EXPECT_EQ(still_queued, 2u);
}

TEST(GenericCv, NotifyAllDrainsEverything) {
  GenericCondVar<8> cv;
  for (std::size_t p = 0; p < 5; ++p) cv.wait_step1(p);
  EXPECT_EQ(cv.notify_all(), 5u);
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_FALSE(cv.in_queue(p));
    EXPECT_FALSE(cv.spin_flag(p));
  }
}

TEST(GenericCv, FullWaitBlocksUntilNotify) {
  GenericCondVar<2> cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    cv.wait(0);
    woke.store(true);
  });
  while (!cv.in_queue(0)) std::this_thread::yield();
  EXPECT_FALSE(woke.load());
  EXPECT_EQ(cv.notify_one(), 0u);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(GenericCv, ConcurrentWaitersAllFreedByNotifyAll) {
  constexpr std::size_t kWaiters = 4;
  GenericCondVar<kWaiters> cv;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (std::size_t p = 0; p < kWaiters; ++p) {
    waiters.emplace_back([&, p] {
      cv.wait(p);
      woke.fetch_add(1);
    });
  }
  for (std::size_t p = 0; p < kWaiters; ++p)
    while (!cv.in_queue(p)) std::this_thread::yield();
  EXPECT_EQ(cv.notify_all(), kWaiters);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), static_cast<int>(kWaiters));
}

// Differential property: the practical queue implementation and the
// Algorithm-2 reference must agree on the observable outcome of any
// (waiters, notify script) configuration -- how many threads a script of
// notify_one/notify_all calls frees.
TEST(GenericCv, DifferentialAgainstPracticalCondVar) {
  struct Script {
    std::size_t waiters;
    std::vector<int> notifies;  // -1 = notify_all, else notify_one
  };
  const std::vector<Script> scripts{
      {3, {0, 0, 0}},
      {3, {-1}},
      {4, {0, -1}},
      {2, {0, 0, 0}},   // more notifies than waiters
      {5, {0, -1, 0}},  // trailing notify after a full drain
  };
  for (const Script& script : scripts) {
    // Reference (Algorithm 2).
    GenericCondVar<8> ref;
    for (std::size_t p = 0; p < script.waiters; ++p) ref.wait_step1(p);
    std::size_t ref_woken = 0;
    for (int op : script.notifies) {
      if (op < 0)
        ref_woken += ref.notify_all();
      else
        ref_woken += ref.notify_one() != GenericCondVar<8>::kInvalid;
    }

    // Practical implementation (Algorithms 3-6) with real threads.
    CondVar cv;
    std::atomic<int> woken{0};
    std::vector<std::thread> waiters;
    for (std::size_t p = 0; p < script.waiters; ++p) {
      waiters.emplace_back([&] {
        NoSync sync;
        cv.wait_final(sync);
        woken.fetch_add(1);
      });
      while (cv.waiter_count() < p + 1) std::this_thread::yield();
    }
    std::size_t impl_woken = 0;
    for (int op : script.notifies) {
      if (op < 0)
        impl_woken += cv.notify_all();
      else
        impl_woken += cv.notify_one() ? 1 : 0;
    }
    EXPECT_EQ(impl_woken, ref_woken) << "script size " << script.waiters;
    // Drain leftovers so threads join.
    while (woken.load() < static_cast<int>(impl_woken))
      std::this_thread::yield();
    cv.notify_all();
    std::atomic<bool> joined{false};
    std::thread drain([&] {
      while (!joined.load()) {
        cv.notify_all();
        std::this_thread::yield();
      }
    });
    for (auto& w : waiters) w.join();
    joined.store(true);
    drain.join();
    // Both models freed the same number before the drain.
    EXPECT_EQ(static_cast<std::size_t>(woken.load()), script.waiters);
  }
}

TEST(GenericCv, PairedNotifyOnesFreeAllWaiters) {
  constexpr std::size_t kWaiters = 3;
  GenericCondVar<kWaiters> cv;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (std::size_t p = 0; p < kWaiters; ++p) {
    waiters.emplace_back([&, p] {
      cv.wait(p);
      woke.fetch_add(1);
    });
  }
  std::size_t freed = 0;
  while (freed < kWaiters) {
    if (cv.notify_one() != GenericCondVar<kWaiters>::kInvalid) ++freed;
    std::this_thread::yield();
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), static_cast<int>(kWaiters));
  // Nothing left.
  EXPECT_EQ(cv.notify_one(), GenericCondVar<kWaiters>::kInvalid);
}

}  // namespace
}  // namespace tmcv
