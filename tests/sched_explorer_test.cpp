// Model-checking the Algorithm 2 step machine: Lemma 2's invariants hold on
// every reachable state of bounded configurations, guarded configurations
// are deadlock-free, and wait/notify counts are conserved.
#include <gtest/gtest.h>

#include "sched/cv_model.h"
#include "sched/explorer.h"
#include "sched/spin_model.h"

namespace tmcv::sched {
namespace {

TEST(Explorer, SingleWaiterSingleNotifyOneExhaustive) {
  CvModel model({.waiters = 1,
                 .notifier_program = {NotifyOp::One},
                 .guarded_notify = true});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_GT(r.schedules, 0u);
}

TEST(Explorer, TwoWaitersTwoNotifyOnesExhaustive) {
  CvModel model({.waiters = 2,
                 .notifier_program = {NotifyOp::One, NotifyOp::One},
                 .guarded_notify = true});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  // Nontrivial interleaving space.
  EXPECT_GT(r.schedules, 10u);
}

TEST(Explorer, ThreeWaitersNotifyAllExhaustive) {
  // NotifyAll guarded to fire only after all three enqueue: deadlock-free.
  CvModel model({.waiters = 3,
                 .notifier_program = {NotifyOp::All},
                 .guarded_notify = true,
                 .notify_all_guard = 3});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(Explorer, MixedNotifyOneThenAllExhaustive) {
  CvModel model({.waiters = 2,
                 .notifier_program = {NotifyOp::One, NotifyOp::All},
                 .guarded_notify = true,
                 .notify_all_guard = 1});
  const ExploreResult r = explore_all(model, /*max_depth=*/64,
                                      /*stop_on_first=*/false);
  // Lost wakeups are possible here (the All may fire while one waiter has
  // not yet enqueued and the One already consumed the other): deadlocks in
  // the explorer's sense are semantically legal lost notifies.  What must
  // hold is the invariants -- zero violations.
  EXPECT_EQ(r.violations, 0u) << r.first_error;
}

TEST(Explorer, UnguardedNotifiesKeepInvariants) {
  // Naked notifies can be lost; the Lemma 2 invariants must survive every
  // interleaving regardless.
  CvModel model({.waiters = 2,
                 .notifier_program = {NotifyOp::One, NotifyOp::One},
                 .guarded_notify = false});
  const ExploreResult r = explore_all(model, /*max_depth=*/64,
                                      /*stop_on_first=*/false);
  EXPECT_EQ(r.violations, 0u) << r.first_error;
  // With unguarded notifies, some schedules strand a waiter (lost notify).
  EXPECT_GT(r.deadlocks, 0u);
}

TEST(Explorer, ConservationHoldsInEveryFinalState) {
  CvModel model({.waiters = 2,
                 .notifier_program = {NotifyOp::All},
                 .guarded_notify = true,
                 .notify_all_guard = 2});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(Explorer, RandomExplorationLargerConfiguration) {
  CvModel model({.waiters = 4,
                 .notifier_program = {NotifyOp::One, NotifyOp::One,
                                      NotifyOp::One, NotifyOp::One},
                 .guarded_notify = true});
  const ExploreResult r = explore_random(model, /*schedules=*/2000,
                                         /*seed=*/42);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.schedules, 2000u);
}

TEST(Explorer, RandomExplorationWithNotifyAll) {
  CvModel model({.waiters = 4,
                 .notifier_program = {NotifyOp::All},
                 .guarded_notify = true,
                 .notify_all_guard = 4});
  const ExploreResult r = explore_random(model, /*schedules=*/2000,
                                         /*seed=*/7);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(Explorer, DetectsSeededInvariantViolation) {
  // Sanity-check the checker itself: a model that breaks invariant 1 on its
  // third step must be caught.
  class BrokenModel final : public Model {
   public:
    void reset() override { pc_ = 0; }
    [[nodiscard]] std::size_t process_count() const override { return 1; }
    [[nodiscard]] bool done(std::size_t) const override { return pc_ >= 3; }
    [[nodiscard]] bool enabled(std::size_t) const override {
      return pc_ < 3;
    }
    void step(std::size_t) override { ++pc_; }
    void check_invariants() const override {
      if (pc_ == 3) throw ModelViolation("seeded violation");
    }

   private:
    int pc_ = 0;
  };
  BrokenModel model;
  const ExploreResult r = explore_all(model);
  EXPECT_EQ(r.violations, 1u);
  EXPECT_EQ(r.first_error, "seeded violation");
  EXPECT_EQ(r.counterexample.size(), 3u);
}

TEST(Explorer, DetectsSeededDeadlock) {
  // One process that blocks forever after its first step.
  class StuckModel final : public Model {
   public:
    void reset() override { pc_ = 0; }
    [[nodiscard]] std::size_t process_count() const override { return 1; }
    [[nodiscard]] bool done(std::size_t) const override { return false; }
    [[nodiscard]] bool enabled(std::size_t) const override {
      return pc_ == 0;
    }
    void step(std::size_t) override { ++pc_; }
    void check_invariants() const override {}

   private:
    int pc_ = 0;
  };
  StuckModel model;
  const ExploreResult r = explore_all(model);
  EXPECT_EQ(r.deadlocks, 1u);
}

TEST(Explorer, ExhaustiveAndRandomAgreeOnSmallConfig) {
  CvModelConfig cfg{.waiters = 2,
                    .notifier_program = {NotifyOp::One, NotifyOp::One},
                    .guarded_notify = true};
  CvModel m1(cfg), m2(cfg);
  const ExploreResult exhaustive = explore_all(m1);
  const ExploreResult random = explore_random(m2, 500, 123);
  EXPECT_TRUE(exhaustive.ok());
  EXPECT_TRUE(random.ok());
}

// ---- Spin-then-park semaphore model (sync/spin.h integration) ----

TEST(SpinModel, NoSpinConfigurationIsLossless) {
  // R = 0 is the TMCV_NO_SPIN / set_spin_budget(0) path: every slow-path
  // schedule parks, none deadlocks, the token is consumed exactly once.
  SpinSemModel model({.spin_rounds = 0, .posts = 1});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_GT(r.schedules, 0u);
  EXPECT_TRUE(model.ever_parked());
  EXPECT_FALSE(model.ever_avoided());
}

TEST(SpinModel, SpinningReachesBothOutcomesAndStaysLossless) {
  // With a spin budget, a post landing mid-spin must complete the wait
  // without a park, and a late post must still wake the parked waiter --
  // both outcomes reachable, zero deadlocks (no lost wakeup) either way.
  SpinSemModel model({.spin_rounds = 2, .posts = 1});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_TRUE(model.ever_avoided());
  EXPECT_TRUE(model.ever_parked());
}

TEST(SpinModel, DoublePostIsIdempotentAcrossSpinBudgets) {
  // Binary semaphore: a second post while the token is still set is
  // absorbed.  The waiter must consume exactly one token in every schedule
  // regardless of the spin budget.
  for (const unsigned rounds : {0u, 1u, 3u}) {
    SpinSemModel model({.spin_rounds = rounds, .posts = 2});
    const ExploreResult r = explore_all(model);
    EXPECT_TRUE(r.ok()) << "R=" << rounds << ": " << r.first_error;
  }
}

TEST(SpinModel, RandomExplorationAgrees) {
  SpinSemModel model({.spin_rounds = 4, .posts = 2});
  const ExploreResult r = explore_random(model, 2000, 42);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

}  // namespace
}  // namespace tmcv::sched
