// Stress tests for the condition variable under randomized mixed-context
// churn: many threads alternating roles (lock-waiter, txn-waiter, lock-
// notifier, txn-notifier, naked notifier) against shared condvars, across
// backends.  These runs hunt for lost wake-ups, queue corruption,
// double-posts, and privatization races (§3.3) that targeted tests miss.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"
#include "util/rng.h"

namespace tmcv {
namespace {

using tm::Backend;

class CondVarStress : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override { tm::set_default_backend(Backend::EagerSTM); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, CondVarStress,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

// Token economy with mixed waiter/notifier contexts: strict conservation
// must hold no matter how the roles interleave.
TEST_P(CondVarStress, MixedContextTokenEconomy) {
  constexpr int kWaiters = 6;
  constexpr int kTokensPerWaiter = 150;
  const int total = kWaiters * kTokensPerWaiter;

  CondVar cv;
  std::mutex m;
  tm::var<int> tokens(0);
  std::atomic<int> consumed{0};

  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      const bool use_lock = (w % 2 == 0);
      for (int r = 0; r < kTokensPerWaiter; ++r) {
        if (use_lock) {
          // Lock-based consumer: classic predicate loop.
          std::unique_lock<std::mutex> lk(m);
          for (;;) {
            const bool got = tm::atomically([&] {
              if (tokens.load() > 0) {
                tokens.store(tokens.load() - 1);
                return true;
              }
              return false;
            });
            if (got) break;
            LockSync sync(m);
            cv.wait(sync);
          }
        } else {
          // Transactional consumer: refactored wait loop.
          for (;;) {
            bool got = false;
            tm::atomically([&] {
              got = false;
              if (tokens.load() > 0) {
                tokens.store(tokens.load() - 1);
                got = true;
                return;
              }
              tm::TxnSync sync;
              cv.wait_final(sync);
            });
            if (got) break;
          }
        }
        consumed.fetch_add(1);
      }
    });
  }

  // Producers in three flavors.
  std::vector<std::thread> producers;
  std::atomic<int> produced{0};
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      while (true) {
        const int mine = produced.fetch_add(1);
        if (mine >= total) break;
        switch (p) {
          case 0: {  // lock-held notify
            std::lock_guard<std::mutex> g(m);
            tm::atomically([&] { tokens.store(tokens.load() + 1); });
            cv.notify_one();
            break;
          }
          case 1:  // transactional notify (deferred)
            tm::atomically([&] {
              tokens.store(tokens.load() + 1);
              cv.notify_one();
            });
            break;
          default:  // naked notify
            tm::atomically([&] { tokens.store(tokens.load() + 1); });
            cv.notify_one();
            break;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  // Sweep stragglers until all tokens are consumed.
  while (consumed.load() < total) {
    cv.notify_all();
    std::this_thread::yield();
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(tokens.load(), 0);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

// Two condvars, threads randomly hopping between them as waiters and
// notifiers: exercises node reuse across queues under contention.
TEST_P(CondVarStress, TwoCondVarsRandomHopping) {
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 400;
  CondVar cv_a, cv_b;
  tm::var<int> credits_a(0), credits_b(0);
  std::atomic<bool> done{false};

  auto consume_or_wait = [&](CondVar& cv, tm::var<int>& credits) {
    for (;;) {
      bool got = false;
      bool bail = false;
      tm::atomically([&] {
        got = false;
        bail = false;
        if (done.load(std::memory_order_relaxed)) {
          bail = true;
          return;
        }
        if (credits.load() > 0) {
          credits.store(credits.load() - 1);
          got = true;
          return;
        }
        tm::TxnSync sync;
        cv.wait_final(sync);
      });
      if (got || bail) return;
    }
  };

  std::vector<std::thread> threads;
  std::atomic<long> net{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto dice = rng.next_below(4);
        CondVar& cv = (dice & 1) ? cv_a : cv_b;
        tm::var<int>& credits = (dice & 1) ? credits_a : credits_b;
        if (dice < 2) {
          // Produce a credit and notify.
          tm::atomically([&] {
            credits.store(credits.load() + 1);
            cv.notify_one();
          });
          net.fetch_add(1);
        } else {
          consume_or_wait(cv, credits);
          net.fetch_sub(1);
        }
      }
    });
  }
  // Unblock any thread starved of credits at shutdown.
  std::thread feeder([&] {
    while (!done.load()) {
      tm::atomically([&] {
        credits_a.store(credits_a.load() + 1);
        cv_a.notify_one();
      });
      tm::atomically([&] {
        credits_b.store(credits_b.load() + 1);
        cv_b.notify_one();
      });
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  feeder.join();
  // Both queues must be empty and consistent afterwards.
  EXPECT_EQ(cv_a.waiter_count(), 0u);
  EXPECT_EQ(cv_b.waiter_count(), 0u);
  EXPECT_GE(credits_a.load(), 0);
  EXPECT_GE(credits_b.load(), 0);
}

// notify_all racing with waiters that immediately re-wait: hammers the
// privatization argument of §3.3 (plain `next` writes on privatized nodes
// vs transactional queue walks).
TEST_P(CondVarStress, PrivatizationChurn) {
  constexpr int kWaiters = 8;
  constexpr int kNotifyRounds = 800;
  CondVar cv;
  std::atomic<bool> stop{false};
  std::atomic<long> wakeups{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&] {
      NoSync sync;
      while (!stop.load()) {
        cv.wait_final(sync);  // immediately re-wait on wake
        wakeups.fetch_add(1);
      }
    });
  }
  // Let the herd park before the storm begins.
  while (cv.waiter_count() < kWaiters) std::this_thread::yield();
  long notified = 0;
  for (int r = 0; r < kNotifyRounds; ++r) {
    notified += static_cast<long>(cv.notify_all());
    if ((r & 7) == 0) std::this_thread::yield();
  }
  stop.store(true);
  std::atomic<bool> joined{false};
  std::thread drainer([&] {
    while (!joined.load()) {
      cv.notify_all();
      std::this_thread::yield();
    }
  });
  for (auto& w : waiters) w.join();
  joined.store(true);
  drainer.join();
  EXPECT_EQ(cv.waiter_count(), 0u);
  EXPECT_GT(wakeups.load(), 0);
}

}  // namespace
}  // namespace tmcv
