// Wait-for graph and stuck-thread diagnosis: snapshot consistency under
// live park/wake traffic, probe digest fields, the deterministic
// lost-wakeup verdict (and its negative spaces), and the JSON exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "obs/waitgraph.h"
#include "sync/locks.h"
#include "sync/semaphore.h"
#include "sync/waitpoint.h"
#include "tm/api.h"
#include "util/backoff.h"
#include "tm/var.h"

namespace tmcv {
namespace {

std::uint64_t entry_ticks_sum(const obs::StallSnapshot& s) {
  std::uint64_t sum = 0;
  for (const obs::StallEntry& e : s.entries) sum += e.ticks;
  return sum;
}

std::uint64_t entry_ns_sum(const obs::StallSnapshot& s) {
  std::uint64_t sum = 0;
  for (const obs::StallEntry& e : s.entries) sum += e.ns;
  return sum;
}

// A waiter parked on `cv` until released; joins cleanly on destruction.
struct ParkedWaiter {
  CondVar cv;
  std::mutex m;
  std::thread t;

  void park() {
    t = std::thread([this] {
      m.lock();
      LockSync sync(m);
      cv.wait(sync);
      m.unlock();
    });
    while (cv.waiter_count() == 0) std::this_thread::yield();
  }

  void release() {
    while (cv.waiter_count() == 0) std::this_thread::yield();
    cv.notify_one();
    t.join();
  }
};

const obs::ThreadRow* find_waiting_row(const obs::WaitGraph& g,
                                       const void* target) {
  for (std::uint32_t i = 0; i < g.thread_count; ++i)
    if (g.rows[i].waiting && g.rows[i].target == target) return &g.rows[i];
  return nullptr;
}

TEST(WaitGraph, CollectSeesParkedCondvarWaiterAndItsEdge) {
  ParkedWaiter w;
  w.park();
  static obs::WaitGraph g;  // ~50 KiB; keep it off the stack
  obs::waitgraph_collect(g);
  const obs::ThreadRow* row = find_waiting_row(g, &w.cv);
  ASSERT_NE(row, nullptr) << "parked waiter missing from snapshot";
  EXPECT_EQ(row->reason, WaitReason::kCondVar);
  EXPECT_EQ(row->episode & 1, 1u);
  EXPECT_GT(row->age_ns, 0u);
  // Exactly one edge per waiting row, and this one has no live holder: a
  // condvar waiter is blocked on whoever notifies next.
  bool found_edge = false;
  for (std::uint32_t i = 0; i < g.edge_count; ++i) {
    const obs::WaitEdge& e = g.edges[i];
    ASSERT_LT(e.waiter, g.thread_count);
    if (&g.rows[e.waiter] == row) {
      found_edge = true;
      EXPECT_EQ(e.reason, WaitReason::kCondVar);
      EXPECT_EQ(e.holder, -1);
    }
  }
  EXPECT_TRUE(found_edge);
  w.release();
  obs::waitgraph_collect(g);
  EXPECT_EQ(find_waiting_row(g, &w.cv), nullptr);
}

TEST(WaitGraph, ProbeCountsWaitersAndAgesGrow) {
  obs::waitgraph_reset();
  ParkedWaiter w;
  w.park();
  const obs::WaitProbe p1 = obs::waitgraph_probe();
  EXPECT_GE(p1.threads_waiting, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const obs::WaitProbe p2 = obs::waitgraph_probe();
  EXPECT_GE(p2.threads_waiting, 1u);
  EXPECT_GT(p2.max_wait_age_ms, p1.max_wait_age_ms);
  w.release();
  // The finished episode folds its park time into the next interval delta.
  const obs::WaitProbe p3 = obs::waitgraph_probe();
  EXPECT_GT(p3.stall_ns, 0u);
  EXPECT_EQ(p3.stall_top_reason,
            static_cast<std::uint64_t>(WaitReason::kCondVar));
}

TEST(WaitGraph, LostWakeupSuspectIsDeterministic) {
  obs::waitgraph_reset();
  obs::set_stuck_windows(2);
  ParkedWaiter w;
  // Condition (c): the condvar must have been notified BEFORE the stuck
  // episode began -- run one healthy round first.
  {
    std::thread healthy([&] {
      w.m.lock();
      LockSync sync(w.m);
      w.cv.wait(sync);
      w.m.unlock();
    });
    while (w.cv.waiter_count() == 0) std::this_thread::yield();
    w.cv.notify_one();
    healthy.join();
  }
  w.park();  // the notify for this round is never sent
  tm::var<std::uint64_t> beat(0);
  for (int probe = 0; probe < 5; ++probe) {
    // Condition (d): healthy transactional progress elsewhere.
    tm::atomically([&] { beat.store(beat.load() + 1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)obs::waitgraph_probe();
  }
  const obs::WaitProbe p = obs::waitgraph_probe();
  EXPECT_GT(p.stuck_age_ms, 0u);
  static obs::WaitGraph g;
  obs::waitgraph_collect(g);
  const obs::ThreadRow* row = find_waiting_row(g, &w.cv);
  ASSERT_NE(row, nullptr);
  ASSERT_GE(g.suspect_count, 1u);
  bool flagged = false;
  for (std::uint32_t i = 0; i < g.suspect_count; ++i) {
    ASSERT_LT(g.suspects[i], g.thread_count);
    if (&g.rows[g.suspects[i]] == row) flagged = true;
  }
  EXPECT_TRUE(flagged) << "orphaned waiter not flagged as suspect";
  w.release();
  (void)obs::waitgraph_probe();
  obs::waitgraph_collect(g);
  EXPECT_EQ(g.suspect_count, 0u) << "suspect survived its own wake";
}

TEST(WaitGraph, NeverNotifiedCondvarIsNotASuspect) {
  obs::waitgraph_reset();
  obs::set_stuck_windows(2);
  ParkedWaiter w;  // a phase barrier: parked, but never once notified
  w.park();
  tm::var<std::uint64_t> beat(0);
  for (int probe = 0; probe < 5; ++probe) {
    tm::atomically([&] { beat.store(beat.load() + 1); });
    (void)obs::waitgraph_probe();
  }
  static obs::WaitGraph g;
  obs::waitgraph_collect(g);
  EXPECT_EQ(g.suspect_count, 0u);
  w.release();
}

TEST(WaitGraph, SemaphoreParkIsNeverJudgedStuck) {
  obs::waitgraph_reset();
  obs::set_stuck_windows(2);
  Semaphore sem;
  std::thread waiter([&] { sem.wait(); });
  tm::var<std::uint64_t> beat(0);
  obs::WaitProbe p;
  for (int probe = 0; probe < 5; ++probe) {
    tm::atomically([&] { beat.store(beat.load() + 1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    p = obs::waitgraph_probe();
  }
  EXPECT_GE(p.threads_waiting, 1u);
  EXPECT_EQ(p.stuck_age_ms, 0u);
  static obs::WaitGraph g;
  obs::waitgraph_collect(g);
  EXPECT_EQ(g.suspect_count, 0u);
  sem.post();
  waiter.join();
}

TEST(WaitGraph, StallSnapshotLedgersAgree) {
  { WaitScope wp(WaitReason::kOrec, nullptr); }
  const obs::StallSnapshot s = obs::stall_snapshot();
  EXPECT_GT(s.total_ticks, 0u);
  EXPECT_EQ(entry_ticks_sum(s), s.total_ticks);
  EXPECT_EQ(entry_ns_sum(s), s.total_ns);
}

TEST(WaitGraph, JsonExportersCarryTheSections) {
  ParkedWaiter w;
  w.park();
  const std::string threads = obs::threads_json();
  EXPECT_NE(threads.find("\"threads\""), std::string::npos);
  EXPECT_NE(threads.find("\"condvar\""), std::string::npos);
  const std::string graph = obs::waitgraph_json();
  for (const char* key :
       {"\"threads\"", "\"edges\"", "\"suspects\"", "\"stall\"",
        "\"total_ticks\"", "\"cycle_threads\""})
    EXPECT_NE(graph.find(key), std::string::npos) << key;
  w.release();
}

// The /waitgraph acceptance bar: snapshots taken while threads park and
// wake at full speed are internally consistent every single time -- one
// edge per waiting row, every index in range, no torn rows.
TEST(WaitGraph, SnapshotConsistentUnderLiveTraffic) {
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  churn.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    churn.emplace_back([&] {
      Semaphore self;
      while (!stop.load(std::memory_order_acquire)) {
        self.post();
        self.wait();  // consumes instantly; publishes briefly under load
        WaitScope wp(WaitReason::kOrec, &self,
                     static_cast<std::uint16_t>(1));
        for (int spin = 0; spin < 32; ++spin) cpu_relax();
      }
    });
  }
  static obs::WaitGraph g;
  for (int snap = 0; snap < 200; ++snap) {
    obs::waitgraph_collect(g);
    ASSERT_LE(g.thread_count, kMaxWaitSlots);
    std::uint32_t waiting = 0;
    for (std::uint32_t i = 0; i < g.thread_count; ++i) {
      const obs::ThreadRow& r = g.rows[i];
      if (!r.waiting) {
        ASSERT_EQ(r.age_ns, 0u);
        continue;
      }
      ++waiting;
      ASSERT_EQ(r.episode & 1, 1u) << "accepted row must be a stable park";
      ASSERT_NE(r.reason, WaitReason::kNone);
    }
    ASSERT_EQ(g.edge_count, waiting) << "exactly one edge per waiting row";
    for (std::uint32_t i = 0; i < g.edge_count; ++i) {
      const obs::WaitEdge& e = g.edges[i];
      ASSERT_LT(e.waiter, g.thread_count);
      ASSERT_TRUE(g.rows[e.waiter].waiting);
      ASSERT_GE(e.holder, -1);
      ASSERT_LT(e.holder, static_cast<std::int32_t>(g.thread_count));
    }
    for (std::uint32_t i = 0; i < g.suspect_count; ++i)
      ASSERT_LT(g.suspects[i], g.thread_count);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : churn) t.join();
}

}  // namespace
}  // namespace tmcv
