// Differential fuzzing of the TM backends: random transactional programs
// executed under each backend must produce exactly the state and read
// results of a plain sequential reference executor -- including programs
// where a fraction of transactions abort (their effects must vanish
// entirely).  Deterministic seeds make failures reproducible.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"
#include "util/rng.h"

namespace tmcv::tm {
namespace {

constexpr std::size_t kCells = 64;

enum class OpKind : std::uint8_t { Read, Write, ReadModifyWrite };

struct Op {
  OpKind kind;
  std::size_t index;
  std::uint64_t operand;
};

struct Txn {
  std::vector<Op> ops;
  bool aborts = false;  // throws after executing all ops
  // Random nesting: wrap the middle of the op list in a nested atomically.
  bool nested = false;
};

struct Program {
  std::vector<Txn> txns;
};

Program generate(std::uint64_t seed, std::size_t txn_count) {
  Xoshiro256 rng(seed);
  Program prog;
  prog.txns.resize(txn_count);
  for (Txn& txn : prog.txns) {
    const std::size_t op_count = 1 + rng.next_below(12);
    txn.ops.reserve(op_count);
    for (std::size_t i = 0; i < op_count; ++i) {
      Op op;
      const auto dice = rng.next_below(3);
      op.kind = dice == 0   ? OpKind::Read
                : dice == 1 ? OpKind::Write
                            : OpKind::ReadModifyWrite;
      op.index = rng.next_below(kCells);
      op.operand = rng.next();
      txn.ops.push_back(op);
    }
    txn.aborts = rng.next_below(5) == 0;   // 20% of txns abort
    txn.nested = rng.next_below(4) == 0;   // 25% use flat nesting
  }
  return prog;
}

struct RunResult {
  std::vector<std::uint64_t> cells;
  std::uint64_t read_checksum = 0;

  bool operator==(const RunResult&) const = default;
};

// Plain sequential reference: committed transactions apply, aborted ones
// vanish (including their read checksums -- a rolled-back txn's reads never
// "happened").
RunResult run_reference(const Program& prog) {
  RunResult r;
  r.cells.assign(kCells, 0);
  for (const Txn& txn : prog.txns) {
    if (txn.aborts) continue;
    for (const Op& op : txn.ops) {
      switch (op.kind) {
        case OpKind::Read:
          r.read_checksum ^= r.cells[op.index] * 0x9e3779b97f4a7c15ull + 1;
          break;
        case OpKind::Write:
          r.cells[op.index] = op.operand;
          break;
        case OpKind::ReadModifyWrite:
          r.cells[op.index] = r.cells[op.index] * 31 + op.operand;
          break;
      }
    }
  }
  return r;
}

struct FuzzAbort {};

RunResult run_tm(const Program& prog, Backend backend) {
  std::vector<std::unique_ptr<var<std::uint64_t>>> cells;
  for (std::size_t i = 0; i < kCells; ++i)
    cells.push_back(std::make_unique<var<std::uint64_t>>(0));
  std::uint64_t checksum = 0;

  auto run_ops = [&](const std::vector<Op>& ops, std::size_t begin,
                     std::size_t end, std::uint64_t& local_checksum) {
    for (std::size_t i = begin; i < end; ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case OpKind::Read:
          local_checksum ^=
              cells[op.index]->load() * 0x9e3779b97f4a7c15ull + 1;
          break;
        case OpKind::Write:
          cells[op.index]->store(op.operand);
          break;
        case OpKind::ReadModifyWrite:
          cells[op.index]->store(cells[op.index]->load() * 31 + op.operand);
          break;
      }
    }
  };

  for (const Txn& txn : prog.txns) {
    try {
      atomically(backend, [&] {
        // Stage the checksum transactionally: if this txn aborts, its
        // reads must not contaminate the global checksum.
        std::uint64_t local = 0;
        const std::size_t n = txn.ops.size();
        if (txn.nested && n >= 2) {
          run_ops(txn.ops, 0, n / 2, local);
          atomically(backend,
                     [&] { run_ops(txn.ops, n / 2, n, local); });
        } else {
          run_ops(txn.ops, 0, n, local);
        }
        if (txn.aborts) throw FuzzAbort{};
        checksum ^= local;
      });
    } catch (const FuzzAbort&) {
      // Rolled back; nothing happened.
    }
  }

  RunResult r;
  r.cells.reserve(kCells);
  for (std::size_t i = 0; i < kCells; ++i)
    r.cells.push_back(cells[i]->load_plain());
  r.read_checksum = checksum;
  return r;
}

class TmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TmFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(TmFuzz, AllBackendsMatchReference) {
  const Program prog = generate(GetParam(), /*txn_count=*/200);
  const RunResult expected = run_reference(prog);
  for (Backend b : {Backend::EagerSTM, Backend::LazySTM, Backend::HTM}) {
    const RunResult got = run_tm(prog, b);
    EXPECT_EQ(got, expected) << "backend " << to_string(b) << " seed "
                             << GetParam();
  }
}

TEST(TmFuzzAborted, NoAbortedWriteSurvivesLargePrograms) {
  // All-abort program: the state must remain untouched on every backend.
  Program prog = generate(1234, 300);
  for (Txn& t : prog.txns) t.aborts = true;
  for (Backend b : {Backend::EagerSTM, Backend::LazySTM, Backend::HTM}) {
    const RunResult got = run_tm(prog, b);
    for (std::uint64_t v : got.cells) EXPECT_EQ(v, 0u);
    EXPECT_EQ(got.read_checksum, 0u);
  }
}

TEST(TmFuzzAborted, AllCommitMatchesReferenceExactly) {
  Program prog = generate(777, 300);
  for (Txn& t : prog.txns) t.aborts = false;
  const RunResult expected = run_reference(prog);
  for (Backend b : {Backend::EagerSTM, Backend::LazySTM, Backend::HTM})
    EXPECT_EQ(run_tm(prog, b), expected) << to_string(b);
}

}  // namespace
}  // namespace tmcv::tm
