// BoundedQueue across all three sync policies (typed tests): FIFO order,
// blocking behaviour, close semantics, and multi-producer/multi-consumer
// conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "apps/bounded_queue.h"

namespace tmcv::apps {
namespace {

template <typename Policy>
class BoundedQueueTest : public ::testing::Test {};

using Policies = ::testing::Types<PthreadPolicy, TmCvPolicy, TxnPolicy>;

class PolicyNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return T::name();
  }
};

TYPED_TEST_SUITE(BoundedQueueTest, Policies, PolicyNames);

TYPED_TEST(BoundedQueueTest, FifoOrderSingleThreaded) {
  BoundedQueue<TypeParam> q(8);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TYPED_TEST(BoundedQueueTest, TryVariantsRespectBounds) {
  BoundedQueue<TypeParam> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  std::uint64_t v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_FALSE(q.try_pop(v));  // empty
}

TYPED_TEST(BoundedQueueTest, PushBlocksWhenFull) {
  BoundedQueue<TypeParam> q(1);
  ASSERT_TRUE(q.push(10));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(11));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  std::uint64_t v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 10u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 11u);
}

TYPED_TEST(BoundedQueueTest, PopBlocksWhenEmpty) {
  BoundedQueue<TypeParam> q(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::uint64_t v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 77u);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(popped.load());
  EXPECT_TRUE(q.push(77));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TYPED_TEST(BoundedQueueTest, CloseDrainsThenFails) {
  BoundedQueue<TypeParam> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: push fails
  std::uint64_t v = 0;
  EXPECT_TRUE(q.pop(v));  // drains remaining items
  EXPECT_TRUE(q.pop(v));
  EXPECT_FALSE(q.pop(v));  // drained + closed
  EXPECT_TRUE(q.closed());
}

TYPED_TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<TypeParam> q(4);
  std::atomic<int> failed_pops{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      std::uint64_t v = 0;
      if (!q.pop(v)) failed_pops.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(failed_pops.load(), 3);
}

TYPED_TEST(BoundedQueueTest, MpmcConservation) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kItemsPerProducer = 1000;
  BoundedQueue<TypeParam> q(16);
  std::atomic<std::uint64_t> sum_consumed{0};
  std::atomic<int> count_consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t v = 0;
      while (q.pop(v)) {
        sum_consumed.fetch_add(v);
        count_consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<int> live_producers{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsPerProducer; ++i)
        EXPECT_TRUE(q.push(static_cast<std::uint64_t>(p * kItemsPerProducer +
                                                      i + 1)));
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }
  for (auto& p : producers) p.join();
  for (auto& c : consumers) c.join();

  const int total = kProducers * kItemsPerProducer;
  EXPECT_EQ(count_consumed.load(), total);
  // Sum of 1..total.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(total) * (total + 1) / 2;
  EXPECT_EQ(sum_consumed.load(), expected);
}

}  // namespace
}  // namespace tmcv::apps
