// Prometheus exposition-format conformance: parse every line the exporter
// emits against the text-format grammar (metric names, label syntax, label
// value escaping, numeric sample values), require a # HELP / # TYPE header
// pair before each family's samples, and reject duplicate series.  Runs on
// a snapshot made rich on purpose (attribution, timing and trace all
// populated) so the new families are exercised, not just the empty shapes.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "tm/api.h"
#include "tm/var.h"

namespace obs = tmcv::obs;


namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
      s[0] != ':')
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
      return false;
  return true;
}

// Parse `{name="value",...}` starting at s[pos] == '{'.  Returns false on
// any grammar violation; on success `pos` is one past the closing '}' and
// `out` holds the label pairs in order of appearance.
bool parse_labels(const std::string& s, std::size_t& pos,
                  std::vector<std::pair<std::string, std::string>>& out) {
  ++pos;  // consume '{'
  while (pos < s.size() && s[pos] != '}') {
    std::size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string lname = s.substr(pos, eq - pos);
    if (!valid_label_name(lname)) return false;
    if (eq + 1 >= s.size() || s[eq + 1] != '"') return false;
    std::string value;
    std::size_t i = eq + 2;
    for (; i < s.size() && s[i] != '"'; ++i) {
      if (s[i] == '\\') {
        if (i + 1 >= s.size()) return false;
        const char esc = s[i + 1];
        if (esc != '\\' && esc != '"' && esc != 'n') return false;
        ++i;
      }
      if (s[i] == '\n') return false;  // raw newline must be escaped
      value += s[i];
    }
    if (i >= s.size()) return false;  // unterminated value
    out.emplace_back(lname, value);
    pos = i + 1;
    if (pos < s.size() && s[pos] == ',') ++pos;
  }
  if (pos >= s.size() || s[pos] != '}') return false;
  ++pos;
  return true;
}

// The family a sample belongs to: summary samples carry _sum/_count
// suffixes on top of the family name declared by # TYPE.
std::string family_of(const std::string& name,
                      const std::map<std::string, std::string>& types) {
  if (types.count(name)) return name;
  for (const char* suffix : {"_sum", "_count"}) {
    const std::string sfx = suffix;
    if (name.size() > sfx.size() &&
        name.compare(name.size() - sfx.size(), sfx.size(), sfx) == 0) {
      const std::string base = name.substr(0, name.size() - sfx.size());
      auto it = types.find(base);
      if (it != types.end() && it->second == "summary") return base;
    }
  }
  return "";
}

std::vector<std::string> check_exposition(const std::string& prom) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> types;  // family -> type
  std::set<std::string> helps;
  std::set<std::string> series;  // name + canonical labels, must be unique
  std::string pending_help;      // family of an unconsumed # HELP line
  std::istringstream in(prom);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (errors.size() < 20)
      errors.push_back("line " + std::to_string(lineno) + ": " + why +
                       ": " + line);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      if (kind == "HELP") {
        if (!valid_metric_name(family)) fail("bad family in HELP");
        if (!helps.insert(family).second) fail("duplicate HELP");
        pending_help = family;
      } else if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (!valid_metric_name(family)) fail("bad family in TYPE");
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "untyped")
          fail("unknown type '" + type + "'");
        if (types.count(family)) fail("duplicate TYPE");
        if (pending_help != family)
          fail("TYPE not immediately preceded by its HELP");
        types[family] = type;
        pending_help.clear();
      } else {
        fail("comment is neither HELP nor TYPE");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    const std::string name = line.substr(0, pos);
    if (!valid_metric_name(name)) {
      fail("bad metric name");
      continue;
    }
    std::vector<std::pair<std::string, std::string>> labels;
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_labels(line, pos, labels)) {
        fail("bad label syntax");
        continue;
      }
    }
    if (pos >= line.size() || line[pos] != ' ') {
      fail("missing space before value");
      continue;
    }
    const std::string value = line.substr(pos + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (value.empty() || end == nullptr || *end != '\0')
      fail("sample value is not a number");
    const std::string family = family_of(name, types);
    if (family.empty())
      fail("sample family has no preceding # TYPE");
    else if (!helps.count(family))
      fail("sample family has no # HELP");
    std::string key = name + "{";
    for (const auto& lv : labels) key += lv.first + "=" + lv.second + ",";
    key += "}";
    if (!series.insert(key).second) fail("duplicate series");
  }
  if (!pending_help.empty())
    errors.push_back("trailing HELP for " + pending_help + " without TYPE");
  return errors;
}

// Populate the registry so the export covers every family: transactions
// (some conflicting) with timing + attribution on, condvar traffic, and at
// least one trace ring with events.
void generate_activity() {
  obs::trace_reset();
  obs::attr_reset();
  obs::set_timing_enabled(true);
  obs::set_trace_enabled(true);
  obs::set_attribution_enabled(true);
  tmcv::tm::var<std::uint64_t> hot(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i)
        tmcv::tm::atomically([&] {
          TMCV_TXN_SITE("prom_test.rmw");
          hot.store(hot.load() + 1);
        });
    });
  for (auto& th : threads) th.join();
  // The contended loop may produce zero aborts on a single-core box, so
  // guarantee at least one attributed sample through the public recorder.
  const std::uint16_t site = obs::intern_site("prom_test.rmw");
  obs::attr_record_abort(site, obs::kAttrReasonConflict);
  obs::attr_record_conflict(site, site, 0);
  tmcv::CondVar cv;
  cv.notify_one();  // lost notify: exercises the cv counters
  obs::set_timing_enabled(false);
  obs::set_trace_enabled(false);
  obs::set_attribution_enabled(false);
}

class ObsPromTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_timing_enabled(false);
    obs::set_trace_enabled(false);
    obs::set_attribution_enabled(false);
    obs::trace_reset();
    obs::attr_reset();
  }
};

TEST_F(ObsPromTest, ExpositionGrammarHolds) {
  generate_activity();
  const std::string prom = obs::to_prometheus(obs::metrics_snapshot());
  const std::vector<std::string> errors = check_exposition(prom);
  std::string joined;
  for (const std::string& e : errors) joined += e + "\n";
  EXPECT_TRUE(errors.empty()) << joined;
}

TEST_F(ObsPromTest, NewFamiliesAreExported) {
  generate_activity();
  const std::string prom = obs::to_prometheus(obs::metrics_snapshot());
  for (const char* needle :
       {"# TYPE tmcv_attr_aborts_total counter",
        "# TYPE tmcv_attr_conflict_pairs_total counter",
        "# TYPE tmcv_attr_stripe_conflicts_total counter",
        "# TYPE tmcv_attr_conflicts_recorded_total counter",
        "# TYPE tmcv_attr_dropped_total counter",
        "# TYPE tmcv_trace_drops_total counter",
        // Build/uptime info-gauges (scrape attributability across restarts).
        "# TYPE tmcv_uptime_seconds gauge",
        "# TYPE tmcv_build_info gauge",
        "tmcv_build_info{version=\"",
        // Exact histogram extrema ride as sibling gauge families.
        "# TYPE tmcv_notify_wake_ns_min gauge",
        "# TYPE tmcv_notify_wake_ns_max gauge",
        "tmcv_txn_commit_ns_min ", "tmcv_txn_commit_ns_max "}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "missing " << needle;
  }
  // build_info carries the compile-time trace state as a label, value 1.
  EXPECT_NE(prom.find(TMCV_TRACE ? ",trace=\"on\"} 1" : ",trace=\"off\"} 1"),
            std::string::npos);
#if TMCV_TRACE
  // The trace ring registered by generate_activity must be listed, drops
  // or not (the family is non-empty whenever rings exist).
  EXPECT_NE(prom.find("tmcv_trace_drops_total{tid="), std::string::npos);
  EXPECT_NE(prom.find("tmcv_attr_aborts_total{site=\"prom_test.rmw\""),
            std::string::npos);
#endif
}

TEST_F(ObsPromTest, WatchdogGaugesConformToGrammar) {
  // The /metrics route serves to_prometheus + watchdog().prometheus()
  // concatenated; the combined document must still parse as one valid
  // exposition (no duplicate families, headers before samples).
  obs::Watchdog wd;
  wd.start(obs::default_rules());
  const std::string prom =
      obs::to_prometheus(obs::metrics_snapshot()) + wd.prometheus();
  wd.stop();
  const std::vector<std::string> errors = check_exposition(prom);
  std::string joined;
  for (const std::string& e : errors) joined += e + "\n";
  EXPECT_TRUE(errors.empty()) << joined;
  EXPECT_NE(prom.find("# TYPE tmcv_alerts_firing gauge"), std::string::npos);
  EXPECT_NE(prom.find("tmcv_alerts_firing{rule=\"park_imbalance\"} 0"),
            std::string::npos);
}

// The parser itself must reject malformed exposition, or the grammar test
// proves nothing.
TEST_F(ObsPromTest, CheckerRejectsMalformedInput) {
  EXPECT_FALSE(check_exposition("no_type_header 1\n").empty());
  EXPECT_FALSE(check_exposition("# HELP x h\n# TYPE x counter\n"
                                "x{bad-label=\"v\"} 1\n").empty());
  EXPECT_FALSE(check_exposition("# HELP x h\n# TYPE x counter\n"
                                "x{l=\"v\"} notanumber\n").empty());
  EXPECT_FALSE(check_exposition("# HELP x h\n# TYPE x counter\n"
                                "x 1\nx 2\n").empty());  // duplicate series
  EXPECT_FALSE(check_exposition("# TYPE x counter\nx 1\n").empty());  // no HELP
  EXPECT_TRUE(check_exposition("# HELP x h\n# TYPE x counter\n"
                               "x{l=\"a\"} 1\nx{l=\"b\"} 2\n").empty());
}

}  // namespace
