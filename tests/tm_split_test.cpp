// Early commit (ENDSYNCBLOCK) and split-transaction machinery (§4.2/§4.3):
// the TM-side mechanics that make WAIT-inside-a-transaction possible.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

class TmSplit : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TmSplit,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::HTM),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(TmSplit, EndSyncBlockPublishesFirstHalf) {
  var<int> x(0);
  atomically(GetParam(), [&] {
    x.store(1);
    TxnSync sync;
    sync.end_block();
    // The first half committed: its write is globally visible and we are no
    // longer inside a transaction.
    EXPECT_FALSE(in_txn());
    EXPECT_EQ(x.load_plain(), 1);
    sync.begin_block();  // irrevocable continuation by default
    EXPECT_TRUE(in_txn());
    EXPECT_EQ(descriptor().state(), TxState::Serial);
    x.store(2);
  });
  EXPECT_EQ(x.load(), 2);
  EXPECT_FALSE(in_txn());
}

TEST_P(TmSplit, EarlyCommitRunsOnCommitHandlers) {
  int fired = 0;
  atomically(GetParam(), [&] {
    on_commit([&] { ++fired; });
    TxnSync sync;
    sync.end_block();
    EXPECT_EQ(fired, 1);  // handler ran at the early commit, not at the end
    sync.begin_block();
  });
  EXPECT_EQ(fired, 1);
}

TEST_P(TmSplit, SplitDoneSkipsFinalCommit) {
  // CPS-style completion: the closure ends with the transaction already
  // closed and split_done marked; atomically() must accept that.
  var<int> x(0);
  atomically(GetParam(), [&] {
    x.store(7);
    TxnSync sync;
    sync.end_block();
    atomically(GetParam(), [&] { x.store(x.load() + 1); });  // continuation
    descriptor().mark_split_done();
  });
  EXPECT_EQ(x.load(), 8);
  EXPECT_FALSE(in_txn());
  EXPECT_FALSE(descriptor().split_done());
}

TEST_P(TmSplit, SavedDepthRestored) {
  atomically(GetParam(), [&] {
    atomically(GetParam(), [&] {
      atomically(GetParam(), [&] {
        EXPECT_EQ(descriptor().depth(), 3u);
        TxnSync sync;
        sync.end_block();
        EXPECT_EQ(descriptor().saved_depth(), 3u);
        sync.begin_block();
        // The continuation resumes at the same flat-nesting depth (§4.3:
        // "it must set the counter appropriately").
        EXPECT_EQ(descriptor().depth(), 3u);
      });
    });
  });
  EXPECT_FALSE(in_txn());
}

TEST_P(TmSplit, AbortBeforeSplitRetriesWholeBody) {
  // An abort during the first half must re-run the entire closure -- nothing
  // was published.  We emulate a one-time conflict with an explicit retry.
  var<int> x(0);
  int first_half_runs = 0;
  atomically(GetParam(), [&] {
    ++first_half_runs;
    x.store(first_half_runs);
    if (first_half_runs == 1) retry_txn();
    TxnSync sync;
    sync.end_block();
    sync.begin_block();
  });
  EXPECT_EQ(first_half_runs, 2);
  EXPECT_EQ(x.load(), 2);
}

TEST_P(TmSplit, SerialContinuationSurvivesConflictingWriters) {
  // Once the continuation runs irrevocably nothing can abort it, even if
  // other threads hammer the same data (they wait on the serial lock).
  var<long> x(0);
  std::thread contender;
  atomically(GetParam(), [&] {
    TxnSync sync;
    sync.end_block();
    sync.begin_block();  // serial from here on
    contender = std::thread([&] {
      for (int i = 0; i < 100; ++i)
        atomically([&] { x.store(x.load() + 1); });
    });
    // The contender cannot begin while we hold the serial lock; our updates
    // proceed conflict-free.
    for (int i = 0; i < 100; ++i) x.store(x.load() + 1);
  });
  contender.join();
  EXPECT_EQ(x.load(), 200);
}

TEST_P(TmSplit, OptimisticContinuationMode) {
  // TxnSync(false): continuation resumes optimistically.  Valid when the
  // continuation provably never aborts (single-threaded here).
  var<int> x(0);
  atomically(GetParam(), [&] {
    x.store(1);
    TxnSync sync(/*irrevocable_continuation=*/false);
    sync.end_block();
    sync.begin_block();
    EXPECT_EQ(descriptor().state(), TxState::Optimistic);
    x.store(2);
  });
  EXPECT_EQ(x.load(), 2);
}

TEST(TmSplitGuards, AccessAfterSplitWaitIsRejected) {
  // After a CPS wait completes the split, further transactional access in
  // the original closure is a programming error caught by an assertion.
  // (Death tests are expensive; we verify the flag protocol instead.)
  atomically([&] {
    TxnSync sync;
    sync.end_block();
    atomically([&] {});  // continuation
    descriptor().mark_split_done();
    EXPECT_TRUE(descriptor().split_done());
  });
  EXPECT_FALSE(descriptor().split_done());
}

}  // namespace
}  // namespace tmcv::tm
