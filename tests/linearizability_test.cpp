// Linearizability of the transactional containers, checked on real
// recorded concurrent executions with a Wing & Gong search, plus unit
// tests of the checker itself on known histories.
#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "sched/linearizability.h"
#include "tm/api.h"
#include "tmds/tx_queue.h"
#include "tmds/tx_stack.h"

namespace tmcv::sched {
namespace {

using tm::Backend;

constexpr int kOpEnq = 0;
constexpr int kOpDeq = 1;  // result: value, or kEmpty
constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
constexpr std::uint64_t kOk = 0;

struct SeqQueue {
  std::deque<std::uint64_t> items;
  std::uint64_t apply(int opcode, std::uint64_t arg) {
    if (opcode == kOpEnq) {
      items.push_back(arg);
      return kOk;
    }
    if (items.empty()) return kEmpty;
    const std::uint64_t v = items.front();
    items.pop_front();
    return v;
  }
};

struct SeqStack {
  std::vector<std::uint64_t> items;
  std::uint64_t apply(int opcode, std::uint64_t arg) {
    if (opcode == kOpEnq) {  // push
      items.push_back(arg);
      return kOk;
    }
    if (items.empty()) return kEmpty;
    const std::uint64_t v = items.back();
    items.pop_back();
    return v;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- checker unit tests on hand-written histories ----

TEST(Checker, AcceptsSequentialHistory) {
  std::vector<LinOp> h{
      {0, 1, kOpEnq, 7, kOk},
      {2, 3, kOpDeq, 0, 7},
  };
  EXPECT_TRUE(is_linearizable(h, SeqQueue{}));
}

TEST(Checker, RejectsValueFromNowhere) {
  std::vector<LinOp> h{
      {0, 1, kOpEnq, 7, kOk},
      {2, 3, kOpDeq, 0, 9},  // 9 was never enqueued
  };
  EXPECT_FALSE(is_linearizable(h, SeqQueue{}));
}

TEST(Checker, RejectsRealTimeOrderViolation) {
  // Deq responded (with EMPTY) strictly before Enq was invoked, yet a
  // second Deq later returns the value -- fine.  But a Deq that returns
  // the value *before* the Enq was invoked is impossible.
  std::vector<LinOp> h{
      {10, 11, kOpEnq, 7, kOk},
      {0, 1, kOpDeq, 0, 7},  // finished before the enqueue began
  };
  EXPECT_FALSE(is_linearizable(h, SeqQueue{}));
}

TEST(Checker, AcceptsOverlappingOpsEitherOrder) {
  // Concurrent Enq and Deq: both orders legal; Deq may see 7 or EMPTY.
  for (std::uint64_t deq_result : {std::uint64_t{7}, kEmpty}) {
    std::vector<LinOp> h{
        {0, 10, kOpEnq, 7, kOk},
        {1, 9, kOpDeq, 0, deq_result},
    };
    EXPECT_TRUE(is_linearizable(h, SeqQueue{})) << deq_result;
  }
}

TEST(Checker, RejectsFifoViolation) {
  std::vector<LinOp> h{
      {0, 1, kOpEnq, 1, kOk},
      {2, 3, kOpEnq, 2, kOk},
      {4, 5, kOpDeq, 0, 2},  // queue must yield 1 first
  };
  EXPECT_FALSE(is_linearizable(h, SeqQueue{}));
  // The same history IS a legal stack (LIFO).
  EXPECT_TRUE(is_linearizable(h, SeqStack{}));
}

TEST(Checker, RejectsDoubleDequeueOfSameValue) {
  std::vector<LinOp> h{
      {0, 1, kOpEnq, 5, kOk},
      {2, 3, kOpDeq, 0, 5},
      {4, 5, kOpDeq, 0, 5},  // consumed twice
  };
  EXPECT_FALSE(is_linearizable(h, SeqQueue{}));
}

// ---- recorded executions of the real containers ----

template <typename Structure>
std::vector<LinOp> record_history(Structure& s, int threads,
                                  int ops_per_thread, std::uint64_t seed) {
  std::vector<std::vector<LinOp>> per_thread(threads);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(seed * 97 + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        LinOp op;
        const bool is_push = rng.next_below(2) == 0;
        op.opcode = is_push ? kOpEnq : kOpDeq;
        op.arg = is_push ? (static_cast<std::uint64_t>(t) * 1000 + i + 1) : 0;
        op.invoke_ns = now_ns();
        if (is_push) {
          s.insert(op.arg);
          op.result = kOk;
        } else {
          std::uint64_t out = 0;
          op.result = s.remove(out) ? out : kEmpty;
        }
        op.response_ns = now_ns();
        per_thread[t].push_back(op);
      }
    });
  }
  for (auto& t : pool) t.join();
  std::vector<LinOp> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  return all;
}

struct QueueAdapter {
  tmds::TxQueue<std::uint64_t> q;
  void insert(std::uint64_t v) { q.enqueue(v); }
  bool remove(std::uint64_t& out) { return q.dequeue(out); }
};

struct StackAdapter {
  tmds::TxStack<std::uint64_t> s;
  void insert(std::uint64_t v) { s.push(v); }
  bool remove(std::uint64_t& out) { return s.pop(out); }
};

class LinearizabilityRecorded
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizabilityRecorded,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(LinearizabilityRecorded, TxQueueHistoriesLinearizeToFifo) {
  for (Backend b :
       {Backend::EagerSTM, Backend::LazySTM, Backend::HTM}) {
    tm::set_default_backend(b);
    QueueAdapter adapter;
    const auto history =
        record_history(adapter, /*threads=*/3, /*ops=*/4, GetParam());
    EXPECT_TRUE(is_linearizable(history, SeqQueue{}))
        << "backend " << tm::to_string(b) << " seed " << GetParam();
  }
  tm::set_default_backend(Backend::EagerSTM);
}

TEST_P(LinearizabilityRecorded, TxStackHistoriesLinearizeToLifo) {
  for (Backend b :
       {Backend::EagerSTM, Backend::LazySTM, Backend::HTM}) {
    tm::set_default_backend(b);
    StackAdapter adapter;
    const auto history =
        record_history(adapter, /*threads=*/3, /*ops=*/4, GetParam());
    EXPECT_TRUE(is_linearizable(history, SeqStack{}))
        << "backend " << tm::to_string(b) << " seed " << GetParam();
  }
  tm::set_default_backend(Backend::EagerSTM);
}

}  // namespace
}  // namespace tmcv::sched
