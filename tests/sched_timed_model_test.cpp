// Model-checking the timed-wait race protocol: every interleaving of
// {timeout, dequeue, deferred post} resolves to exactly one outcome with
// exact token conservation.
#include <gtest/gtest.h>

#include "sched/timed_model.h"

namespace tmcv::sched {
namespace {

TEST(TimedModel, OneWaiterOneNotifierExhaustive) {
  TimedWaitModel model({.waiters = 1, .notifiers = 1});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  // The race has several distinct resolutions: timeout-before-notify,
  // notify-before-timeout, and the overlap (dequeue committed, post
  // pending, timer fires -> must-consume).  All must appear.
  EXPECT_GT(r.schedules, 3u);
}

TEST(TimedModel, TwoWaitersOneNotifierExhaustive) {
  TimedWaitModel model({.waiters = 2, .notifiers = 1});
  const ExploreResult r = explore_all(model, /*max_depth=*/64);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(TimedModel, TwoWaitersTwoNotifiersExhaustive) {
  TimedWaitModel model({.waiters = 2, .notifiers = 2});
  const ExploreResult r = explore_all(model, /*max_depth=*/96);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_GT(r.schedules, 50u);
}

TEST(TimedModel, RandomLargerConfiguration) {
  TimedWaitModel model({.waiters = 3, .notifiers = 3});
  const ExploreResult r = explore_random(model, 4000, /*seed=*/99);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(TimedModel, MustConsumeWindowIsReachable) {
  // Drive the exact §timed-wait window by hand: enqueue, dequeue commits,
  // timer fires before the post -> removal misses -> waiter must absorb
  // the late token and report "notified".
  TimedWaitModel model({.waiters = 1, .notifiers = 1});
  model.reset();
  model.step(0);  // waiter 0: enqueue
  model.step(2);  // notifier: dequeue (post still pending)
  model.step(1);  // timer fires
  model.step(0);  // waiter: try_remove_self -> not found -> must-consume
  model.check_invariants();
  EXPECT_FALSE(model.enabled(0));  // blocked: token not posted yet
  model.step(2);                   // notifier: deferred post lands
  EXPECT_TRUE(model.enabled(0));
  model.step(0);  // waiter absorbs the token
  model.check_invariants();
  model.check_final();
  EXPECT_EQ(model.outcome(0), TimedWaitModel::Outcome::Notified);
}

TEST(TimedModel, PureTimeoutPath) {
  TimedWaitModel model({.waiters = 1, .notifiers = 0});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  // Only resolution: park, timer, successful self-removal.
  model.reset();
  model.step(0);  // enqueue
  model.step(1);  // timer
  model.step(0);  // remove self -> timed out
  model.check_final();
  EXPECT_EQ(model.outcome(0), TimedWaitModel::Outcome::TimedOut);
}

}  // namespace
}  // namespace tmcv::sched
