// Watchdog + flight-recorder tests: rule shape, fire/clear hysteresis with
// synthetic samples, per-rule signal wiring, idle-interval gating, the
// JSON/Prometheus exporters, recorder->watchdog observer integration, and
// the flight dump (edge-triggered on firing, valid post-mortem JSON, C API).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/c_api.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "tm/api.h"
#include "tm/var.h"

namespace obs = tmcv::obs;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A sample that breaches (or clears) the abort-storm rule with plenty of
// activity to be judged.
obs::TsSample storm_sample(std::uint64_t t_ms, bool breaching) {
  obs::TsSample s;
  s.t_ms = t_ms;
  s.interval_ms = 1000;
  s.commits = 1000;
  s.aborts = breaching ? 900 : 10;
  return s;
}

obs::WatchdogRule abort_storm_rule() {
  return {obs::RuleKind::kAbortStorm, /*threshold=*/0.5, /*min_activity=*/100,
          /*consecutive=*/2};
}

TEST(ObsWatchdogTest, DefaultRulesCoverEverySignal) {
  const std::vector<obs::WatchdogRule> rules = obs::default_rules();
  ASSERT_EQ(rules.size(),
            static_cast<std::size_t>(obs::RuleKind::kRuleKindCount));
  bool seen[static_cast<int>(obs::RuleKind::kRuleKindCount)] = {};
  for (const obs::WatchdogRule& r : rules) {
    EXPECT_GT(r.threshold, 0.0);
    EXPECT_GE(r.consecutive, 1u);
    seen[static_cast<int>(r.kind)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_STREQ(obs::rule_kind_name(obs::RuleKind::kAbortStorm),
               "abort_storm");
  EXPECT_STREQ(obs::rule_kind_name(obs::RuleKind::kEvictionStorm),
               "eviction_storm");
}

TEST(ObsWatchdogTest, FiresAfterConsecutiveBreachesAndClears) {
  obs::Watchdog wd;
  wd.start({abort_storm_rule()});
  ASSERT_TRUE(wd.running());

  // One breaching sample is debounced, not an incident.
  wd.evaluate(storm_sample(1000, true));
  std::vector<obs::AlertState> st = wd.alerts();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_FALSE(st[0].firing);
  EXPECT_EQ(st[0].breach_streak, 1u);
  EXPECT_FALSE(wd.any_firing());

  // Second consecutive breach fires.
  wd.evaluate(storm_sample(2000, true));
  st = wd.alerts();
  EXPECT_TRUE(st[0].firing);
  EXPECT_EQ(st[0].fired_count, 1u);
  EXPECT_EQ(st[0].last_change_ms, 2000u);
  EXPECT_TRUE(wd.any_firing());
  EXPECT_GT(st[0].last_value, 0.5);

  // Staying breached keeps firing but does not re-count the episode.
  wd.evaluate(storm_sample(3000, true));
  st = wd.alerts();
  EXPECT_TRUE(st[0].firing);
  EXPECT_EQ(st[0].fired_count, 1u);

  // The first healthy sample clears and resets the streak.
  wd.evaluate(storm_sample(4000, false));
  st = wd.alerts();
  EXPECT_FALSE(st[0].firing);
  EXPECT_EQ(st[0].breach_streak, 0u);
  EXPECT_EQ(st[0].last_change_ms, 4000u);

  // A new episode increments fired_count again.
  wd.evaluate(storm_sample(5000, true));
  wd.evaluate(storm_sample(6000, true));
  EXPECT_EQ(wd.alerts()[0].fired_count, 2u);

  wd.stop();
  EXPECT_FALSE(wd.running());
  // State stays readable after stop, but evaluation is off.
  wd.evaluate(storm_sample(7000, false));
  EXPECT_TRUE(wd.alerts()[0].firing);
}

TEST(ObsWatchdogTest, IdleIntervalsGiveNoVerdict) {
  obs::Watchdog wd;
  wd.start({abort_storm_rule()});
  wd.evaluate(storm_sample(1000, true));
  wd.evaluate(storm_sample(2000, true));
  ASSERT_TRUE(wd.any_firing());

  // An idle tick (activity below min_activity) must NOT clear the alert:
  // "the workload stopped" is not "the storm ended".
  obs::TsSample idle;
  idle.t_ms = 3000;
  idle.interval_ms = 1000;
  idle.commits = 3;  // 3 < min_activity=100
  wd.evaluate(idle);
  EXPECT_TRUE(wd.any_firing());
  wd.stop();
}

TEST(ObsWatchdogTest, EveryRuleKindReadsItsSignal) {
  // One rule per kind, thresholds low enough that the crafted sample
  // breaches all five at once; consecutive=1 so a single sample fires.
  std::vector<obs::WatchdogRule> rules = {
      {obs::RuleKind::kAbortStorm, 0.5, 1, 1},
      {obs::RuleKind::kSerialEscalation, 10.0, 1, 1},
      {obs::RuleKind::kLatencyP99, 1e6, 1, 1},
      {obs::RuleKind::kParkImbalance, 0.9, 1, 1},
      {obs::RuleKind::kEvictionStorm, 0.5, 1, 1},
  };
  obs::Watchdog wd;
  wd.start(rules);

  obs::TsSample s;
  s.t_ms = 1000;
  s.interval_ms = 1000;
  s.commits = 100;
  s.aborts = 90;                  // ratio 0.9 > 0.5
  s.cm_serial_escalations = 50;   // 50/s > 10/s
  s.notify_wake_p99_ns = 2000000; // 2 ms > 1 ms
  s.threads_woken = 10;
  s.parks = 99;
  s.parks_avoided = 1;            // park ratio 0.99 > 0.9
  s.kv_sets = 100;
  s.kv_evictions = 80;            // 0.8 > 0.5
  wd.evaluate(s);

  for (const obs::AlertState& st : wd.alerts())
    EXPECT_TRUE(st.firing) << obs::rule_kind_name(st.rule.kind);

  // A healthy sample clears all five.
  obs::TsSample ok;
  ok.t_ms = 2000;
  ok.interval_ms = 1000;
  ok.commits = 1000;
  ok.aborts = 1;
  ok.threads_woken = 10;
  ok.parks_avoided = 10;
  ok.kv_sets = 100;
  wd.evaluate(ok);
  for (const obs::AlertState& st : wd.alerts())
    EXPECT_FALSE(st.firing) << obs::rule_kind_name(st.rule.kind);
  wd.stop();
}

TEST(ObsWatchdogTest, JsonAndPrometheusExporters) {
  obs::Watchdog wd;
  wd.start({abort_storm_rule()});
  wd.evaluate(storm_sample(1000, true));
  wd.evaluate(storm_sample(2000, true));

  const std::string json = wd.alerts_json();
  for (const char* needle :
       {"\"watchdog_running\": true", "\"rule\": \"abort_storm\"",
        "\"firing\": true", "\"threshold\": 0.5", "\"fired_count\": 1",
        "\"breach_streak\": 2", "\"consecutive\": 2",
        "\"last_change_ms\": 2000"})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;

  const std::string prom = wd.prometheus();
  EXPECT_NE(prom.find("# TYPE tmcv_alerts_firing gauge"), std::string::npos);
  EXPECT_NE(prom.find("tmcv_alerts_firing{rule=\"abort_storm\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("tmcv_alerts_fired_total{rule=\"abort_storm\"} 1"),
            std::string::npos);
  wd.stop();
  EXPECT_NE(wd.alerts_json().find("\"watchdog_running\": false"),
            std::string::npos);
}

TEST(ObsWatchdogTest, RidesTheRecorderObserver) {
  // Integration: watchdog().start subscribes to timeseries() ticks, so a
  // manual sample_now() evaluates rules with no extra plumbing.  A
  // threshold of ~0 on aborts with min_activity=1 fires on any real work.
  obs::TimeSeriesOptions ts;
  ts.interval_ms = 10;
  ts.depth = 8;
  ts.sampler_thread = false;
  ASSERT_TRUE(obs::timeseries().start(ts));
  obs::watchdog().start({{obs::RuleKind::kAbortStorm, /*threshold=*/-1.0,
                          /*min_activity=*/1, /*consecutive=*/1}});

  tmcv::tm::var<std::uint64_t> x(0);
  for (int i = 0; i < 5; ++i)
    tmcv::tm::atomically([&] { x.store(x.load() + 1); });
  obs::timeseries().sample_now();  // any activity breaches threshold -1

  EXPECT_TRUE(obs::watchdog().any_firing());
  obs::watchdog().stop();
  obs::timeseries().stop();
}

TEST(ObsWatchdogTest, FlightDumpOnFireEdgeOnly) {
  const std::string path = testing::TempDir() + "tmcv_wd_flight.json";
  std::remove(path.c_str());

  obs::Watchdog wd;
  wd.start({abort_storm_rule()}, path);
  wd.evaluate(storm_sample(1000, true));
  EXPECT_EQ(slurp(path), "");  // not yet: debounced

  wd.evaluate(storm_sample(2000, true));  // fire edge -> dump
  std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty());
  for (const char* needle :
       {"\"tmcv_flight\": 1", "\"reason\": \"watchdog\"", "\"meta\"",
        "\"alerts\"", "\"metrics\"", "\"history\"", "\"attribution_full\"",
        "\"conflicts_recorded\"", "\"trace\"", "\"traceEvents\""})
    EXPECT_NE(dump.find(needle), std::string::npos) << needle;

  // Still firing: no second dump this episode.
  std::remove(path.c_str());
  wd.evaluate(storm_sample(3000, true));
  EXPECT_EQ(slurp(path), "");

  // Clear, then a new episode dumps again.
  wd.evaluate(storm_sample(4000, false));
  wd.evaluate(storm_sample(5000, true));
  wd.evaluate(storm_sample(6000, true));
  EXPECT_NE(slurp(path).find("\"tmcv_flight\": 1"), std::string::npos);

  wd.stop();
  std::remove(path.c_str());
}

TEST(ObsWatchdogTest, FlightDumpCapturesWorkloadEvidence) {
  // End-to-end: real transactions with capture on, then a dump must carry
  // the evidence a post-mortem needs -- trace records (under TMCV_TRACE),
  // a history window, and the full attribution tables.
  obs::TimeSeriesOptions ts;
  ts.interval_ms = 10;
  ts.depth = 8;
  ts.sampler_thread = false;
  ASSERT_TRUE(obs::timeseries().start(ts));
  obs::trace_reset();
  obs::set_trace_enabled(true);
  obs::set_timing_enabled(true);

  tmcv::tm::var<std::uint64_t> x(0);
  for (int i = 0; i < 50; ++i)
    tmcv::tm::atomically([&] { x.store(x.load() + 1); });
  obs::timeseries().sample_now();

  const std::string path = testing::TempDir() + "tmcv_e2e_flight.json";
  std::remove(path.c_str());
  ASSERT_EQ(tmcv_flight_dump(path.c_str()), 0);  // the C API entry point
  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\": \"api\""), std::string::npos);
  EXPECT_EQ(dump.find("\"samples\": []"), std::string::npos)
      << "flight dump lost the history window";
  EXPECT_NE(dump.find("\"seq\": 0"), std::string::npos);
#if TMCV_TRACE
  EXPECT_NE(dump.find("txn.commit"), std::string::npos)
      << "flight dump carries no trace records";
#endif
  // The dump must restore capture flags after freezing them.
  EXPECT_TRUE(obs::trace_enabled());

  obs::set_trace_enabled(false);
  obs::set_timing_enabled(false);
  obs::trace_reset();
  obs::timeseries().stop();
  std::remove(path.c_str());

  // Unwritable path: the C API reports failure and leaves no tmp litter.
  EXPECT_EQ(tmcv_flight_dump("/nonexistent-dir/f.json"), -1);
  EXPECT_EQ(tmcv_flight_dump(nullptr), -1);
}

}  // namespace
