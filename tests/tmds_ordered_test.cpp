// Ordered tmds family (skiplist / BST / sorted list / counters):
// sequential semantics against a std::map oracle, multi-thread
// conservation, range-scan snapshot consistency under concurrent writers,
// abort rollback of structural links, and counter exactness -- all run
// under the eager/lazy/NOrec backend matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tmds/tx_bst.h"
#include "tmds/tx_counter.h"
#include "tmds/tx_list.h"
#include "tmds/tx_skiplist.h"
#include "util/rng.h"

namespace tmcv::tmds {
namespace {

using tm::Backend;
using Key = std::uint64_t;
using Val = std::uint64_t;

class OrderedBackends : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { tm::set_default_backend(GetParam()); }
  void TearDown() override {
    tm::set_default_backend(Backend::EagerSTM);
    tm::gc_collect();
  }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, OrderedBackends,
                         ::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                           Backend::NOrec),
                         [](const auto& info) {
                           return std::string(tm::to_string(info.param));
                         });

// Full ascending dump via range() -- the scan API is itself under test.
// The visitor mutates non-transactional state, so the reset must sit inside
// the same transaction as the scan (flat nesting): if the scan aborts and
// re-executes, the accumulator restarts with it.
template <typename S>
std::vector<std::pair<Key, Val>> dump(const S& s) {
  std::vector<std::pair<Key, Val>> out;
  tm::atomically([&] {
    out.clear();
    s.range(0, ~Key{0}, [&](Key k, Val v) {
      out.emplace_back(k, v);
      return true;
    });
  });
  return out;
}

template <typename S>
void expect_matches_oracle(const S& s, const std::map<Key, Val>& oracle) {
  const auto got = dump(s);
  ASSERT_EQ(got.size(), oracle.size());
  ASSERT_EQ(s.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

// ---- sequential semantics vs std::map ----

template <typename S>
void oracle_mixed_ops() {
  S s;
  std::map<Key, Val> oracle;
  Xoshiro256 rng(0x0DDB1A5E5ull);
  constexpr int kOps = 2000;
  constexpr Key kSpace = 256;
  for (int i = 0; i < kOps; ++i) {
    const Key k = rng.next() % kSpace;
    switch (rng.next() % 4) {
      case 0: {  // insert/overwrite
        const Val v = rng.next();
        const bool fresh = s.insert(k, v);
        EXPECT_EQ(fresh, oracle.find(k) == oracle.end());
        oracle[k] = v;
        break;
      }
      case 1: {  // erase
        const bool erased = s.erase(k);
        EXPECT_EQ(erased, oracle.erase(k) == 1);
        break;
      }
      case 2: {  // get
        Val v = 0;
        const bool hit = s.get(k, v);
        const auto it = oracle.find(k);
        ASSERT_EQ(hit, it != oracle.end());
        if (hit) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
      default: {  // lower_bound
        Key ok = 0;
        Val ov = 0;
        const bool found = s.lower_bound(k, ok, ov);
        const auto it = oracle.lower_bound(k);
        ASSERT_EQ(found, it != oracle.end());
        if (found) {
          EXPECT_EQ(ok, it->first);
          EXPECT_EQ(ov, it->second);
        }
        break;
      }
    }
    if (i % 500 == 499) expect_matches_oracle(s, oracle);
  }
  expect_matches_oracle(s, oracle);
  tm::gc_collect();
}

TEST_P(OrderedBackends, SkipListMatchesMapOracle) {
  oracle_mixed_ops<TxSkipList<Key, Val>>();
}

TEST_P(OrderedBackends, BstMatchesMapOracle) {
  oracle_mixed_ops<TxBst<Key, Val>>();
}

TEST_P(OrderedBackends, SortedListMatchesMapOracle) {
  oracle_mixed_ops<TxSortedList<Key, Val>>();
}

// ---- lower_bound / range edges ----

template <typename S>
void lower_bound_edges() {
  S s;
  Key ok = 0;
  Val ov = 0;
  EXPECT_FALSE(s.lower_bound(0, ok, ov));  // empty
  s.insert(10, 100);
  s.insert(20, 200);
  s.insert(30, 300);
  ASSERT_TRUE(s.lower_bound(5, ok, ov));  // below min
  EXPECT_EQ(ok, 10u);
  ASSERT_TRUE(s.lower_bound(20, ok, ov));  // exact hit
  EXPECT_EQ(ok, 20u);
  EXPECT_EQ(ov, 200u);
  ASSERT_TRUE(s.lower_bound(21, ok, ov));  // gap
  EXPECT_EQ(ok, 30u);
  EXPECT_FALSE(s.lower_bound(31, ok, ov));  // above max
  // Range window [15, 30): exactly {20}.
  std::vector<Key> seen;
  EXPECT_EQ(s.range(15, 30, [&](Key k, Val) {
    seen.push_back(k);
    return true;
  }), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 20u);
  // Early stop: visit exactly one of the three.
  EXPECT_EQ(s.range(0, 100, [&](Key, Val) { return false; }), 1u);
}

TEST_P(OrderedBackends, SkipListLowerBoundAndRangeEdges) {
  lower_bound_edges<TxSkipList<Key, Val>>();
}

TEST_P(OrderedBackends, BstLowerBoundAndRangeEdges) {
  lower_bound_edges<TxBst<Key, Val>>();
}

TEST_P(OrderedBackends, SortedListLowerBoundAndRangeEdges) {
  lower_bound_edges<TxSortedList<Key, Val>>();
}

// ---- abort rollback of structural links ----

template <typename S>
void abort_rolls_back_structure() {
  S s;
  std::map<Key, Val> oracle;
  for (Key k = 0; k < 40; k += 2) {
    s.insert(k, k + 1);
    oracle[k] = k + 1;
  }
  try {
    tm::atomically([&] {
      // Structural churn across the whole window: fresh towers/subtrees,
      // unlinks, overwrites -- then abort the nest.
      for (Key k = 1; k < 40; k += 2) s.insert(k, 7);
      for (Key k = 0; k < 40; k += 4) s.erase(k);
      s.insert(2, 999);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  // Every link the aborted nest touched must be exactly as before.
  expect_matches_oracle(s, oracle);
  tm::gc_collect();
}

TEST_P(OrderedBackends, SkipListAbortRollsBackLinks) {
  abort_rolls_back_structure<TxSkipList<Key, Val>>();
}

TEST_P(OrderedBackends, BstAbortRollsBackLinks) {
  abort_rolls_back_structure<TxBst<Key, Val>>();
}

TEST_P(OrderedBackends, SortedListAbortRollsBackLinks) {
  abort_rolls_back_structure<TxSortedList<Key, Val>>();
}

// ---- multi-thread conservation ----

template <typename S>
void concurrent_conservation() {
  S s;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  constexpr Key kSpace = 128;
  std::atomic<std::int64_t> net_inserts{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xC0FFEEull + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.next() % kSpace;
        if (rng.next() % 2 == 0) {
          if (s.insert(k, k)) net_inserts.fetch_add(1);
        } else {
          if (s.erase(k)) net_inserts.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Sum of committed inserts minus committed erases == live size.
  ASSERT_GE(net_inserts.load(), 0);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(net_inserts.load()));
  // The surviving keys are strictly ascending and unique (no torn links).
  const auto got = dump(s);
  EXPECT_EQ(got.size(), s.size());
  for (std::size_t i = 1; i < got.size(); ++i)
    EXPECT_LT(got[i - 1].first, got[i].first);
  tm::gc_collect();
}

TEST_P(OrderedBackends, SkipListConcurrentConservation) {
  concurrent_conservation<TxSkipList<Key, Val>>();
}

TEST_P(OrderedBackends, BstConcurrentConservation) {
  concurrent_conservation<TxBst<Key, Val>>();
}

TEST_P(OrderedBackends, SortedListConcurrentConservation) {
  concurrent_conservation<TxSortedList<Key, Val>>();
}

// ---- range-scan consistency under concurrent writers ----

template <typename S>
void range_scan_snapshot_consistency() {
  S s;
  constexpr Key kKeys = 16;
  constexpr Val kUnit = 10;
  for (Key k = 0; k < kKeys; ++k) s.insert(k, kUnit);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread scanner([&] {
    while (!stop.load()) {
      Val total = 0;
      std::size_t seen = 0;
      // Reset-inside-the-transaction idiom: the visitor accumulates into
      // plain locals, so the zeroing must re-run if the scan re-executes.
      tm::atomically([&] {
        total = 0;
        seen = 0;
        s.range(0, kKeys, [&](Key, Val v) {
          total += v;
          ++seen;
          return true;
        });
      });
      // Writers move units between keys but never change the total or the
      // population; any other observation is a torn snapshot.
      if (total != kKeys * kUnit || seen != kKeys) anomalies.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(0xBEEF0ull + w);
      for (int i = 0; i < 600; ++i) {
        const Key from = rng.next() % kKeys;
        const Key to = rng.next() % kKeys;
        tm::atomically([&] {
          Val a = 0, b = 0;
          if (!s.get(from, a) || !s.get(to, b) || from == to || a == 0)
            return;
          s.insert(from, a - 1);
          s.insert(to, b + 1);
        });
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  scanner.join();
  EXPECT_EQ(anomalies.load(), 0);
  // Final books balance exactly (quiescent, but use the same idiom).
  Val total = 0;
  tm::atomically([&] {
    total = 0;
    s.range(0, kKeys, [&](Key, Val v) {
      total += v;
      return true;
    });
  });
  EXPECT_EQ(total, kKeys * kUnit);
  tm::gc_collect();
}

TEST_P(OrderedBackends, SkipListRangeScanConsistentUnderWriters) {
  range_scan_snapshot_consistency<TxSkipList<Key, Val>>();
}

TEST_P(OrderedBackends, BstRangeScanConsistentUnderWriters) {
  range_scan_snapshot_consistency<TxBst<Key, Val>>();
}

TEST_P(OrderedBackends, SortedListRangeScanConsistentUnderWriters) {
  range_scan_snapshot_consistency<TxSortedList<Key, Val>>();
}

// ---- cross-structure composition ----

TEST_P(OrderedBackends, ComposedTransferBetweenStructures) {
  // Move a key between a skiplist and a BST atomically; an observer
  // transaction must see it in exactly one of the two.
  TxSkipList<Key, Val> a;
  TxBst<Key, Val> b;
  a.insert(42, 1);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread observer([&] {
    while (!stop.load()) {
      const int visible = tm::atomically([&] {
        Val v = 0;
        int count = 0;
        if (a.get(42, v)) ++count;
        if (b.get(42, v)) ++count;
        return count;
      });
      if (visible != 1) anomalies.fetch_add(1);
    }
  });
  for (int i = 0; i < 400; ++i) {
    tm::atomically([&] {
      Val v = 0;
      if (a.get(42, v)) {
        a.erase(42);
        b.insert(42, v);
      } else if (b.get(42, v)) {
        b.erase(42);
        a.insert(42, v);
      }
    });
  }
  stop.store(true);
  observer.join();
  EXPECT_EQ(anomalies.load(), 0);
  tm::gc_collect();
}

// ---- deterministic skiplist heights ----

TEST(TmdsOrdered, SkipListHeightsAreDeterministicAndGeometric) {
  using SL = TxSkipList<Key, Val>;
  constexpr int kKeys = 4096;
  int at_least_two = 0;
  for (Key k = 0; k < kKeys; ++k) {
    const std::size_t h = SL::height_of(k);
    ASSERT_GE(h, 1u);
    ASSERT_LE(h, SL::kMaxLevel);
    EXPECT_EQ(h, SL::height_of(k));  // pure function of the key
    if (h >= 2) ++at_least_two;
  }
  // P(height >= 2) = 1/2: allow wide slack, reject degenerate hashes.
  EXPECT_GT(at_least_two, kKeys / 4);
  EXPECT_LT(at_least_two, 3 * kKeys / 4);
}

TEST_P(OrderedBackends, SkipListEraseReinsertIsShapeStable) {
  // Deleting and re-inserting a key rebuilds the identical towers, so a
  // replayed schedule cannot skew the structure: observable here as
  // byte-identical dumps plus the deterministic height function.
  TxSkipList<Key, Val> s;
  for (Key k = 0; k < 200; ++k) s.insert(k, k);
  const auto before = dump(s);
  for (Key k = 0; k < 200; k += 3) s.erase(k);
  for (Key k = 0; k < 200; k += 3) s.insert(k, k);
  EXPECT_EQ(dump(s), before);
  tm::gc_collect();
}

// ---- counters ----

TEST_P(OrderedBackends, PlainCounterExactUnderConcurrency) {
  TxCounter c;
  constexpr int kThreads = 4;
  constexpr int kAdds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c.increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST_P(OrderedBackends, StripedCounterExactUnderConcurrency) {
  TxStripedCounter<8> c;
  constexpr int kThreads = 4;
  constexpr int kAdds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAdds; ++i) c.add(t % 2 == 0 ? 2 : -1);
    });
  }
  for (auto& th : threads) th.join();
  // 2 threads adding +2, 2 adding -1, kAdds each.
  EXPECT_EQ(c.value(), 2 * kAdds * 2 - 2 * kAdds);
}

TEST_P(OrderedBackends, CounterRollsBackWithEnclosingTransaction) {
  TxCounter c;
  TxStripedCounter<4> sc;
  c.add(5);
  sc.add(5);
  try {
    tm::atomically([&] {
      c.add(100);
      sc.add(100);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(sc.value(), 5);
}

TEST_P(OrderedBackends, StripedCounterReadIsConsistentSnapshot) {
  // Writers keep the striped total invariant (+1 here, -1 there); a reader
  // summing the stripes transactionally must always see the invariant.
  TxStripedCounter<8> c;
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread reader([&] {
    while (!stop.load()) {
      if (c.value() != 0) anomalies.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        tm::atomically([&] {
          c.add(+3);
          c.add(-3);
        });
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_EQ(c.value(), 0);
}

}  // namespace
}  // namespace tmcv::tmds
