// Integration tests for the PARSEC mini-kernels: every kernel completes
// under every software system, checksums agree across systems (the workloads
// are deterministic), and the Table-1 registry is populated.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "parsec/registry.h"
#include "parsec/runner.h"
#include "tm/api.h"

namespace tmcv::parsec {
namespace {

// Small inputs for tests: scale well below benchmark size.
KernelConfig test_config(int threads) {
  KernelConfig cfg;
  cfg.threads = threads;
  cfg.scale = 0.05;
  cfg.seed = 7;
  return cfg;
}

class KernelMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, System, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernelsSystemsThreads, KernelMatrix,
    ::testing::Combine(
        ::testing::Values("facesim", "ferret", "fluidanimate",
                          "streamcluster", "bodytrack", "x264", "raytrace",
                          "dedup"),
        ::testing::Values(System::Pthread, System::TmCv, System::Tm),
        ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      const std::string& name = std::get<0>(info.param);
      const System sys = std::get<1>(info.param);
      const int threads = std::get<2>(info.param);
      std::string s;
      switch (sys) {
        case System::Pthread:
          s = "pthread";
          break;
        case System::TmCv:
          s = "tmcv";
          break;
        case System::Tm:
          s = "tm";
          break;
      }
      return name + "_" + s + "_t" + std::to_string(threads);
    });

TEST_P(KernelMatrix, CompletesWithWork) {
  const auto& [name, sys, threads] = GetParam();
  const KernelInfo* kernel = find_kernel(name);
  ASSERT_NE(kernel, nullptr);
  const KernelResult r = kernel->run(sys, test_config(threads));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.units, 0u);
}

class KernelChecksum : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelChecksum,
                         ::testing::Values("facesim", "ferret",
                                           "fluidanimate", "streamcluster",
                                           "bodytrack", "x264", "raytrace",
                                           "dedup"),
                         [](const auto& info) { return info.param; });

// The synthetic workloads are deterministic in (seed, input, threads): all
// three systems must produce the same checksum at the same thread count.
// This is the strongest end-to-end evidence that transactionalization did
// not change program semantics.  Kernels that do not partition work by
// thread id are additionally thread-count-invariant.
TEST_P(KernelChecksum, SystemsAgree) {
  const KernelInfo* kernel = find_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  const KernelResult base = kernel->run(System::Pthread, test_config(2));
  const KernelResult tmcv_r = kernel->run(System::TmCv, test_config(2));
  const KernelResult tm_r = kernel->run(System::Tm, test_config(2));
  EXPECT_EQ(base.checksum, tmcv_r.checksum);
  EXPECT_EQ(base.checksum, tm_r.checksum);
  EXPECT_EQ(base.units, tm_r.units);
  // fluidanimate and streamcluster split fixed work into per-thread slices
  // (seeded by thread id), so only they vary with the thread count.
  if (GetParam() != "fluidanimate" && GetParam() != "streamcluster") {
    const KernelResult tm4_r = kernel->run(System::Tm, test_config(4));
    EXPECT_EQ(base.checksum, tm4_r.checksum);
  }
}

TEST(ParsecRegistry, AllEightKernelsRegistered) {
  const auto& rows = registered_characteristics();
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& paper_row : paper_table1()) {
    bool found = false;
    for (const auto& row : rows)
      if (row.benchmark == paper_row.benchmark) found = true;
    EXPECT_TRUE(found) << paper_row.benchmark;
  }
}

TEST(ParsecRegistry, CharacteristicsAreInternallyConsistent) {
  for (const auto& row : registered_characteristics()) {
    // Condvar transactions are a subset of all transactions; barrier counts
    // are subsets of their columns.
    EXPECT_LE(row.condvar_transactions, row.total_transactions)
        << row.benchmark;
    EXPECT_LE(row.condvar_transactions_barrier, row.condvar_transactions)
        << row.benchmark;
    EXPECT_LE(row.refactored_barrier, row.refactored_continuations)
        << row.benchmark;
    EXPECT_GT(row.total_transactions, 0) << row.benchmark;
  }
}

TEST(ParsecRegistry, PaperTableTotalsMatchPublishedTotals) {
  int total = 0, cv = 0, cv_barrier = 0, refactored = 0, ref_barrier = 0;
  for (const auto& row : paper_table1()) {
    total += row.total_transactions;
    cv += row.condvar_transactions;
    cv_barrier += row.condvar_transactions_barrier;
    refactored += row.refactored_continuations;
    ref_barrier += row.refactored_barrier;
  }
  // Paper Table 1 TOTAL row: 65 / 19 (6) / 11 (5).
  EXPECT_EQ(total, 65);
  EXPECT_EQ(cv, 19);
  EXPECT_EQ(cv_barrier, 6);
  EXPECT_EQ(refactored, 11);
  EXPECT_EQ(ref_barrier, 5);
}

TEST(ParsecRunner, KernelTableIsComplete) {
  const auto& ks = kernels();
  ASSERT_EQ(ks.size(), 8u);
  for (const auto& k : ks) {
    EXPECT_NE(k.run, nullptr);
    EXPECT_FALSE(k.threads_westmere.empty());
    EXPECT_FALSE(k.threads_haswell.empty());
    EXPECT_EQ(find_kernel(k.name), &k);
  }
  EXPECT_EQ(find_kernel("nonexistent"), nullptr);
}

TEST(ParsecRunner, SystemNames) {
  EXPECT_STREQ(to_string(System::Pthread), "Parsec+pthreadCondVar");
  EXPECT_STREQ(to_string(System::TmCv), "Parsec+TMCondVar");
  EXPECT_STREQ(to_string(System::Tm), "TMParsec+TMCondVar");
}

// Kernels under the HTM backend (the "Haswell" configuration).
TEST(ParsecHtm, DedupCompletesUnderHtmBackend) {
  tm::set_default_backend(tm::Backend::HTM);
  const KernelInfo* kernel = find_kernel("dedup");
  ASSERT_NE(kernel, nullptr);
  const KernelResult r = kernel->run(System::Tm, test_config(2));
  EXPECT_GT(r.units, 0u);
  tm::set_default_backend(tm::Backend::EagerSTM);
}

TEST(ParsecHtm, CondvarInternalsNeverSyscallInsideHtm) {
  // The §3.2 design claim: WAIT commits before sleeping and NOTIFY defers
  // posts to commit handlers, so no semaphore syscall ever executes inside
  // a hardware transaction.  Run a condvar-heavy kernel fully
  // transactionalized on the HTM backend and verify zero syscall aborts.
  tm::set_default_backend(tm::Backend::HTM);
  tm::stats_reset();
  const KernelInfo* kernel = find_kernel("ferret");
  ASSERT_NE(kernel, nullptr);
  const KernelResult r = kernel->run(System::Tm, test_config(4));
  EXPECT_GT(r.units, 0u);
  EXPECT_EQ(tm::stats_snapshot().htm_syscall_aborts, 0u);
  tm::set_default_backend(tm::Backend::EagerSTM);
}

TEST(ParsecHtm, BarrierKernelCompletesUnderHtmBackend) {
  tm::set_default_backend(tm::Backend::HTM);
  const KernelInfo* kernel = find_kernel("fluidanimate");
  ASSERT_NE(kernel, nullptr);
  const KernelResult r = kernel->run(System::Tm, test_config(2));
  EXPECT_GT(r.units, 0u);
  tm::set_default_backend(tm::Backend::EagerSTM);
}

}  // namespace
}  // namespace tmcv::parsec
