// Metrics-registry tests: snapshot/delta, the JSON and Prometheus
// exporters, the condvar aggregate (live + destroyed), and a regression
// test for the thread-exit stats fold racing concurrent snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tm/api.h"
#include "tm/var.h"

namespace obs = tmcv::obs;
using tmcv::CondVar;
using tmcv::CondVarStats;

namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::set_timing_enabled(false);
    obs::trace_reset();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::set_timing_enabled(false);
    obs::trace_reset();
  }
};

TEST_F(ObsMetricsTest, SnapshotAndDelta) {
  const obs::MetricsSnapshot before = obs::metrics_snapshot();
  obs::set_timing_enabled(true);
  tmcv::tm::var<std::uint64_t> x(0);
  for (int i = 0; i < 10; ++i) tmcv::tm::atomically([&] { x.store(x.load() + 1); });
  obs::set_timing_enabled(false);
  const obs::MetricsSnapshot after = obs::metrics_snapshot();
  const obs::MetricsSnapshot d = obs::metrics_delta(after, before);

  EXPECT_GE(d.tm.commits, 10u);
#if TMCV_TRACE
  // Timing was on: the commit histogram saw our transactions.  (With the
  // compile gate off the hooks vanish and the histograms stay empty.)
  EXPECT_GE(d.txn_commit_ns.count, 10u);
  EXPECT_GT(d.txn_commit_ns.sum, 0u);
#else
  EXPECT_EQ(d.txn_commit_ns.count, 0u);
#endif
}

TEST_F(ObsMetricsTest, JsonExporterShape) {
  const obs::MetricsSnapshot s = obs::metrics_snapshot();
  const std::string json = obs::to_json(s);
  for (const char* key :
       {"\"tm\"", "\"condvar\"", "\"trace\"", "\"histograms\"",
        "\"commits\"", "\"aborts\"", "\"dedup_hit_rate\"", "\"waits\"",
        "\"cv_wait_ns\"", "\"notify_wake_ns\"", "\"txn_commit_ns\"",
        "\"txn_abort_ns\"", "\"serial_stall_ns\"", "\"p50\"", "\"p99\"",
        "\"p999\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ObsMetricsTest, PrometheusExporterShape) {
  const obs::MetricsSnapshot s = obs::metrics_snapshot();
  const std::string prom = obs::to_prometheus(s);
  for (const char* needle :
       {"tmcv_tm_commits_total", "tmcv_cv_waits_total",
        "# TYPE tmcv_cv_wait_ns summary",
        "tmcv_cv_wait_ns{quantile=\"0.5\"}",
        "tmcv_cv_wait_ns{quantile=\"0.999\"}", "tmcv_cv_wait_ns_sum",
        "tmcv_cv_wait_ns_count"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST_F(ObsMetricsTest, WriteFilesAndChromeTrace) {
  obs::set_trace_enabled(true);
  obs::emit_instant(obs::Event::kSemPost);
  obs::set_trace_enabled(false);

  ASSERT_TRUE(
      obs::write_metrics_files(obs::metrics_snapshot(), "obs_test_metrics.json"));
  ASSERT_TRUE(obs::write_chrome_trace("obs_test_trace.json"));

  const auto slurp = [](const char* path) {
    std::FILE* f = std::fopen(path, "r");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof buf, f)) > 0)
      out.append(buf, n);
    if (f) std::fclose(f);
    return out;
  };
  EXPECT_NE(slurp("obs_test_metrics.json").find("\"histograms\""),
            std::string::npos);
  EXPECT_NE(slurp("obs_test_metrics.json.prom").find("tmcv_tm_commits_total"),
            std::string::npos);
  const std::string trace = slurp("obs_test_trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("sem.post"), std::string::npos);
  std::remove("obs_test_metrics.json");
  std::remove("obs_test_metrics.json.prom");
  std::remove("obs_test_trace.json");
}

TEST_F(ObsMetricsTest, CondVarAggregateIncludesDestroyedObjects) {
  const CondVarStats before = tmcv::condvar_stats_aggregate();
  {
    CondVar cv;
    // Notifies on an empty queue: counted as calls + lost notifies, no
    // waiters needed.
    EXPECT_FALSE(cv.notify_one());
    EXPECT_FALSE(cv.notify_one());
    EXPECT_EQ(cv.notify_all(), 0u);

    CondVarStats live = tmcv::condvar_stats_aggregate();
    live -= before;
    EXPECT_EQ(live.notify_one_calls, 2u);
    EXPECT_EQ(live.notify_all_calls, 1u);
    EXPECT_EQ(live.lost_notifies, 3u);
  }
  // Destroyed: its counters moved to the retired accumulator, not vanished.
  CondVarStats after = tmcv::condvar_stats_aggregate();
  after -= before;
  EXPECT_EQ(after.notify_one_calls, 2u);
  EXPECT_EQ(after.notify_all_calls, 1u);
  EXPECT_EQ(after.lost_notifies, 3u);
}

// Regression: tm::Stats folding on thread exit used to release the retired
// lock before clearing the thread's registry slot, so a concurrent
// stats_snapshot could count an exiting thread twice.  Spawn/join threads
// while snapshotting continuously: every intermediate snapshot must be
// monotonic and never exceed the true total, and the final snapshot must be
// exact.
TEST_F(ObsMetricsTest, ThreadExitFoldDoesNotRaceSnapshots) {
  tmcv::tm::stats_reset();
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 4;
  constexpr int kTxnsPerThread = 200;
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWaves) * kThreadsPerWave * kTxnsPerThread;

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread snapshotter([&] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t commits = tmcv::tm::stats_snapshot().commits;
      // Double-counting manifests as commits > kTotal (an exiting thread
      // seen both live and retired) or as a non-monotonic sequence.
      if (commits > kTotal || commits < prev) {
        failed.store(true);
        break;
      }
      prev = commits;
    }
  });

  tmcv::tm::var<std::uint64_t> x(0);
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    workers.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kTxnsPerThread; ++i)
          tmcv::tm::atomically([&] { x.store(x.load() + 1); });
      });
    }
    for (auto& w : workers) w.join();  // every join is a thread-exit fold
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_FALSE(failed.load()) << "snapshot raced a thread-exit fold";
  EXPECT_EQ(tmcv::tm::stats_snapshot().commits, kTotal);
  std::uint64_t sum = 0;
  tmcv::tm::atomically([&] { sum = x.load(); });
  EXPECT_EQ(sum, kTotal);
}

}  // namespace
