// Epoch-based reclamation: deferral to commit, rollback of allocations,
// safety under in-flight transactions, and eventual reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tm/api.h"
#include "tm/epoch.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

// Drive collection until the pending set drains (epoch advance needs two
// passes; loop generously).
void collect_until_empty() {
  for (int i = 0; i < 10 && gc_pending() > 0; ++i) gc_collect();
}

TEST(EpochGc, RetireOutsideTransactionEventuallyFrees) {
  const int base_live = Tracked::live.load();
  retire(new Tracked);
  EXPECT_GE(Tracked::live.load(), base_live);  // not freed synchronously...
  collect_until_empty();
  EXPECT_EQ(Tracked::live.load(), base_live);  // ...but freed at quiescence
}

TEST(EpochGc, RetireInsideAbortedTransactionDoesNothing) {
  const int base_live = Tracked::live.load();
  Tracked* obj = new Tracked;
  try {
    atomically([&] {
      retire(obj);  // deferred to commit...
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  collect_until_empty();
  // ...which never happened: the object must still be alive.
  EXPECT_EQ(Tracked::live.load(), base_live + 1);
  retire(obj);
  collect_until_empty();
  EXPECT_EQ(Tracked::live.load(), base_live);
}

TEST(EpochGc, TxNewRolledBackOnAbort) {
  const int base_live = Tracked::live.load();
  try {
    atomically([&] {
      (void)tx_new<Tracked>();
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(Tracked::live.load(), base_live);  // freed by the abort handler
}

TEST(EpochGc, TxNewSurvivesCommit) {
  const int base_live = Tracked::live.load();
  Tracked* obj = nullptr;
  atomically([&] { obj = tx_new<Tracked>(); });
  EXPECT_EQ(Tracked::live.load(), base_live + 1);
  retire(obj);
  collect_until_empty();
  EXPECT_EQ(Tracked::live.load(), base_live);
}

TEST(EpochGc, InFlightTransactionBlocksReclamation) {
  const int base_live = Tracked::live.load();
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  var<int> dummy(0);
  // A transaction that starts now and stays open pins the current epoch.
  std::thread pinner([&] {
    atomically([&] {
      (void)dummy.load();
      parked.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!parked.load()) std::this_thread::yield();

  retire(new Tracked);
  // Collect aggressively: the pinned epoch must keep the object alive.
  for (int i = 0; i < 10; ++i) gc_collect();
  EXPECT_EQ(Tracked::live.load(), base_live + 1);

  release.store(true);
  pinner.join();
  collect_until_empty();
  EXPECT_EQ(Tracked::live.load(), base_live);
}

TEST(EpochGc, EpochAdvancesUnderCollection) {
  const std::uint64_t before = gc_epoch();
  gc_collect();
  gc_collect();
  EXPECT_GE(gc_epoch(), before);
}

TEST(EpochGc, OrphansFromExitedThreadsAreDrained) {
  const int base_live = Tracked::live.load();
  std::thread t([] {
    retire(new Tracked);
    // Thread exits without collecting: the entry is orphaned.
  });
  t.join();
  collect_until_empty();
  EXPECT_EQ(Tracked::live.load(), base_live);
}

}  // namespace
}  // namespace tmcv::tm
