// Model-checking the practical queue implementation (Algorithms 4-6) with
// deferred commit-time posts: token conservation, no spurious wakeups, no
// stranded tokens, and deadlock freedom of guarded configurations -- over
// every interleaving of bounded configurations.
#include <gtest/gtest.h>

#include "sched/queue_model.h"

namespace tmcv::sched {
namespace {

TEST(QueueModel, OneWaiterOneNotifyOneExhaustive) {
  QueueModel model({.waiters = 1,
                    .notifier_program = {QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_GT(r.schedules, 0u);
}

TEST(QueueModel, TwoWaitersTwoNotifyOnesExhaustive) {
  QueueModel model({.waiters = 2,
                    .notifier_program = {QNotifyOp::One, QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_GT(r.schedules, 20u);
}

TEST(QueueModel, ThreeWaitersNotifyAllPlusOneExhaustive) {
  // NotifyAll may fire at any nonempty queue size; a trailing NotifyOne
  // covers stragglers.  Lost-notify deadlocks are possible (a waiter may
  // enqueue after both notifiers finished), so only invariants are
  // asserted; the guarded deadlock-free case is the next test.
  QueueModel model({.waiters = 3,
                    .notifier_program = {QNotifyOp::All, QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r =
      explore_all(model, /*max_depth=*/64, /*stop_on_first=*/false);
  EXPECT_EQ(r.violations, 0u) << r.first_error;
}

TEST(QueueModel, NotifyOnePerWaiterIsDeadlockFree) {
  QueueModel model({.waiters = 3,
                    .notifier_program = {QNotifyOp::One, QNotifyOp::One,
                                         QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r = explore_all(model, /*max_depth=*/96);
  EXPECT_TRUE(r.ok()) << r.first_error;
}

TEST(QueueModel, UnguardedNotifiesKeepInvariants) {
  QueueModel model({.waiters = 2,
                    .notifier_program = {QNotifyOp::One, QNotifyOp::All},
                    .guarded_notify = false});
  const ExploreResult r =
      explore_all(model, /*max_depth=*/64, /*stop_on_first=*/false);
  EXPECT_EQ(r.violations, 0u) << r.first_error;
  // Naked notifies can be lost; some schedules strand waiters -- that is
  // specification-legal behaviour, not a bug.
  EXPECT_GT(r.deadlocks, 0u);
}

TEST(QueueModel, DeferredPostWindowIsExplored) {
  // The defining window of §3.2: the dequeue commits but the post is
  // postponed while the waiter blocks in SEMWAIT.  With one waiter and one
  // guarded NotifyOne, every state has exactly one enabled step --
  // enqueue, dequeue, (deferred) post, consume -- so there is exactly ONE
  // schedule, and it necessarily passes through the dequeued-but-not-yet-
  // posted window with the waiter blocked.  Token semantics are what let
  // it complete.
  QueueModel model({.waiters = 1,
                    .notifier_program = {QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r = explore_all(model);
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.schedules, 1u);
  EXPECT_GE(r.steps, 4u);  // 4 forward steps (+ backtracking replays)

  // With a second waiter the window genuinely branches: the second enqueue
  // can land before or after the dequeue/post of the first.
  QueueModel model2({.waiters = 2,
                     .notifier_program = {QNotifyOp::One, QNotifyOp::One},
                     .guarded_notify = true});
  const ExploreResult r2 = explore_all(model2);
  EXPECT_TRUE(r2.ok()) << r2.first_error;
  EXPECT_GT(r2.schedules, 1u);
}

TEST(QueueModel, RandomLargeConfiguration) {
  QueueModel model({.waiters = 5,
                    .notifier_program = {QNotifyOp::One, QNotifyOp::All,
                                         QNotifyOp::One, QNotifyOp::One,
                                         QNotifyOp::One},
                    .guarded_notify = true});
  const ExploreResult r = explore_random(model, 3000, /*seed=*/11);
  EXPECT_EQ(r.violations, 0u) << r.first_error;
}

TEST(QueueModel, FifoOrderOfWakeups) {
  // Single notifier issuing two NotifyOnes after both waiters enqueued in
  // a forced order: the first dequeue must select the first enqueuer.
  // (The model's queue is FIFO by construction; this guards regressions if
  // the model is refactored.)
  QueueModel model({.waiters = 2,
                    .notifier_program = {QNotifyOp::One, QNotifyOp::One},
                    .guarded_notify = true});
  model.reset();
  model.step(0);  // waiter 0 enqueues
  model.step(1);  // waiter 1 enqueues
  model.step(2);  // notifier A dequeues -> must pick waiter 0
  model.step(2);  // notifier A posts
  EXPECT_TRUE(model.enabled(0));   // waiter 0 can consume
  EXPECT_FALSE(model.enabled(1));  // waiter 1 still blocked
  model.check_invariants();
}

}  // namespace
}  // namespace tmcv::sched
