// Hybrid backend (HTM -> STM -> serial) and HTM chaos injection.
#include <gtest/gtest.h>

#include "backend_fixture.h"  // orec/HTM-specific: pin the eager default

#include <memory>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm/var.h"

namespace tmcv::tm {
namespace {

TEST(TmHybrid, SmallTransactionCommitsInHardware) {
  stats_reset();
  var<int> x(0);
  atomically(Backend::Hybrid, [&] { x.store(x.load() + 1); });
  EXPECT_EQ(x.load(), 1);
  // No fallback needed: zero serial commits, zero escalations.
  const Stats s = stats_snapshot();
  EXPECT_EQ(s.serial_fallbacks, 0u);
  EXPECT_EQ(s.serial_commits, 0u);
}

TEST(TmHybrid, CapacityOverflowFallsBackToSoftware) {
  stats_reset();
  constexpr std::size_t kVars = TxDescriptor::kHtmWriteCapacity + 8;
  std::vector<std::unique_ptr<var<int>>> vars;
  for (std::size_t i = 0; i < kVars; ++i)
    vars.push_back(std::make_unique<var<int>>(0));
  atomically(Backend::Hybrid, [&] {
    for (std::size_t i = 0; i < kVars; ++i) vars[i]->store(1);
  });
  for (std::size_t i = 0; i < kVars; ++i) EXPECT_EQ(vars[i]->load(), 1);
  const Stats s = stats_snapshot();
  EXPECT_GT(s.htm_capacity_aborts, 0u);
  // The software STM absorbed it: no serial section was needed (unlike
  // Backend::HTM, whose only fallback is the serial lock).
  EXPECT_EQ(s.serial_fallbacks, 0u);
}

TEST(TmHybrid, ConcurrentCountersNoLostUpdates) {
  var<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        atomically(Backend::Hybrid, [&] { counter.store(counter.load() + 1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), static_cast<long>(kThreads) * kIters);
}

TEST(TmHybrid, RetryWaitWorksUnderHybrid) {
  var<bool> flag(false);
  std::thread waiter([&] {
    atomically(Backend::Hybrid, [&] {
      if (!flag.load()) retry_wait();
      EXPECT_TRUE(flag.load());
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  atomically([&] { flag.store(true); });
  waiter.join();
}

TEST(TmHybrid, NamedInToString) {
  EXPECT_STREQ(to_string(Backend::Hybrid), "Hybrid");
}

class ChaosGuard {
 public:
  explicit ChaosGuard(std::uint32_t rate) {
    TxDescriptor::set_htm_chaos_per_million(rate);
  }
  ~ChaosGuard() { TxDescriptor::set_htm_chaos_per_million(0); }
};

TEST(TmChaos, HtmSurvivesInjectedAborts) {
  stats_reset();
  ChaosGuard chaos(100000);  // 10% abort probability per access
  var<long> counter(0);
  for (int i = 0; i < 500; ++i)
    atomically(Backend::HTM, [&] { counter.store(counter.load() + 1); });
  EXPECT_EQ(counter.load(), 500);
  const Stats s = stats_snapshot();
  EXPECT_GT(s.htm_chaos_aborts, 0u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(TmChaos, HybridSurvivesHeavyChaosViaSoftware) {
  stats_reset();
  ChaosGuard chaos(500000);  // 50%: hardware attempts almost always die
  var<long> counter(0);
  for (int i = 0; i < 200; ++i)
    atomically(Backend::Hybrid, [&] { counter.store(counter.load() + 1); });
  EXPECT_EQ(counter.load(), 200);
  // The software path carried the load; correctness is unaffected.
  EXPECT_GT(stats_snapshot().htm_chaos_aborts, 0u);
}

TEST(TmChaos, ChaosDoesNotAffectStmBackends) {
  stats_reset();
  ChaosGuard chaos(1000000);  // would kill every HTM access
  var<long> counter(0);
  for (int i = 0; i < 100; ++i) {
    atomically(Backend::EagerSTM, [&] { counter.store(counter.load() + 1); });
    atomically(Backend::LazySTM, [&] { counter.store(counter.load() + 1); });
  }
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(stats_snapshot().htm_chaos_aborts, 0u);
}

TEST(TmChaos, CondvarShapedTransactionsSurviveChaos) {
  // The condvar's internal transactions under chaotic HTM: wait/notify
  // machinery must remain exact (this is the Figure-2 configuration with
  // hostile hardware).
  stats_reset();
  ChaosGuard chaos(50000);  // 5%
  var<long> head(0), tail(0);
  for (int i = 0; i < 300; ++i) {
    atomically(Backend::HTM, [&] {
      head.store(head.load() + 1);
      tail.store(tail.load() + 1);
    });
  }
  EXPECT_EQ(head.load(), 300);
  EXPECT_EQ(tail.load(), 300);
}

}  // namespace
}  // namespace tmcv::tm
