// Tests for the C-compatible pthread-style interface.
#include <gtest/gtest.h>

#include <errno.h>
#include <pthread.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/c_api.h"

namespace {

TEST(CApi, CreateDestroy) {
  tmcv_cond_t* cond = tmcv_cond_create();
  ASSERT_NE(cond, nullptr);
  tmcv_cond_destroy(cond);
}

TEST(CApi, NullArgumentsRejected) {
  tmcv_cond_t* cond = tmcv_cond_create();
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  EXPECT_EQ(tmcv_cond_wait(nullptr, &m), EINVAL);
  EXPECT_EQ(tmcv_cond_wait(cond, nullptr), EINVAL);
  EXPECT_EQ(tmcv_cond_signal(nullptr), EINVAL);
  EXPECT_EQ(tmcv_cond_broadcast(nullptr), EINVAL);
  tmcv_cond_destroy(cond);
}

TEST(CApi, SignalWakesWaiterWithMutexHeld) {
  tmcv_cond_t* cond = tmcv_cond_create();
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  bool ready = false;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    pthread_mutex_lock(&m);
    while (!ready) EXPECT_EQ(tmcv_cond_wait(cond, &m), 0);
    // Returned holding the mutex.
    woke.store(true);
    pthread_mutex_unlock(&m);
  });
  // Classic producer side.
  for (;;) {
    pthread_mutex_lock(&m);
    ready = true;
    pthread_mutex_unlock(&m);
    tmcv_cond_signal(cond);
    if (woke.load()) break;
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
  tmcv_cond_destroy(cond);
}

TEST(CApi, BroadcastWakesEveryone) {
  tmcv_cond_t* cond = tmcv_cond_create();
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  int stage = 0;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      pthread_mutex_lock(&m);
      while (stage == 0) tmcv_cond_wait(cond, &m);
      pthread_mutex_unlock(&m);
      woke.fetch_add(1);
    });
  }
  // Wait for everyone to park, then release the herd.
  for (;;) {
    pthread_mutex_lock(&m);
    stage = 1;
    pthread_mutex_unlock(&m);
    tmcv_cond_broadcast(cond);
    if (woke.load() == kWaiters) break;
    std::this_thread::yield();
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), kWaiters);
  tmcv_cond_destroy(cond);
}

TEST(CApi, TimedWaitTimesOut) {
  tmcv_cond_t* cond = tmcv_cond_create();
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  pthread_mutex_lock(&m);
  EXPECT_EQ(tmcv_cond_timedwait_ms(cond, &m, 20), ETIMEDOUT);
  // Mutex re-acquired on the timeout path.
  EXPECT_EQ(pthread_mutex_trylock(&m), EBUSY);
  pthread_mutex_unlock(&m);
  tmcv_cond_destroy(cond);
}

TEST(CApi, TimedWaitSucceedsWhenSignaled) {
  tmcv_cond_t* cond = tmcv_cond_create();
  pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;
  std::atomic<int> rc{-1};
  std::thread waiter([&] {
    pthread_mutex_lock(&m);
    rc.store(tmcv_cond_timedwait_ms(cond, &m, 10000));
    pthread_mutex_unlock(&m);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  while (rc.load() == -1) {
    tmcv_cond_signal(cond);
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_EQ(rc.load(), 0);
  tmcv_cond_destroy(cond);
}

TEST(CApi, BackendSelection) {
  // Initial default depends on TMCV_DEFAULT_BACKEND (the CI matrix runs a
  // norec leg), so capture-and-restore instead of asserting it.
  const std::string initial = tmcv_tm_get_backend();
  EXPECT_EQ(tmcv_tm_set_backend("norec"), 0);
  EXPECT_STREQ(tmcv_tm_get_backend(), "norec");
  EXPECT_EQ(tmcv_tm_set_backend("bogus"), -1);
  EXPECT_EQ(tmcv_tm_set_backend(nullptr), -1);
  EXPECT_STREQ(tmcv_tm_get_backend(), "norec");  // bad input changes nothing
  tmcv_tm_set_backend_auto(1);
  tmcv_tm_set_backend_auto(0);
  EXPECT_EQ(tmcv_tm_set_backend("eager"), 0);
  EXPECT_STREQ(tmcv_tm_get_backend(), "eager");
  EXPECT_EQ(tmcv_tm_set_backend(initial.c_str()), 0);
}

}  // namespace
