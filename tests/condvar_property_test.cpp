// Property-based tests of the condition-variable guarantees (§3.4):
//   * No spurious wake-ups: completed waits never exceed notifications.
//   * No lost wake-ups: every notify that selected a waiter wakes it.
//   * Exact pairing under churn, across backends and thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/condvar.h"
#include "tm/api.h"
#include "tm/var.h"
#include "util/rng.h"

namespace tmcv {
namespace {

using tm::Backend;

struct ChurnParam {
  Backend backend;
  int waiters;
  int rounds;
};

class CondVarChurn
    : public ::testing::TestWithParam<std::tuple<Backend, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CondVarChurn,
    ::testing::Combine(::testing::Values(Backend::EagerSTM, Backend::LazySTM,
                                         Backend::HTM),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return std::string(tm::to_string(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// Token-passing churn: a notifier hands out exactly `kTokens` wakeups; the
// waiters must consume exactly that many, one per wait, no more, no less.
TEST_P(CondVarChurn, ExactWaitNotifyPairing) {
  const Backend backend = std::get<0>(GetParam());
  const int n_waiters = std::get<1>(GetParam());
  tm::set_default_backend(backend);
  constexpr int kRoundsPerWaiter = 200;
  const int total_rounds = n_waiters * kRoundsPerWaiter;

  CondVar cv;
  tm::var<int> tokens(0);
  std::atomic<int> consumed{0};
  std::atomic<int> completed_waits{0};

  std::vector<std::thread> waiters;
  for (int w = 0; w < n_waiters; ++w) {
    waiters.emplace_back([&] {
      for (int r = 0; r < kRoundsPerWaiter; ++r) {
        // Refactored wait loop: take a token or wait.
        for (;;) {
          bool got = false;
          tm::atomically([&] {
            got = false;  // re-init: closure may retry
            if (tokens.load() > 0) {
              tokens.store(tokens.load() - 1);
              got = true;
              return;
            }
            tm::TxnSync sync;
            cv.wait_final(sync);
          });
          if (got) break;
          completed_waits.fetch_add(1);
        }
        consumed.fetch_add(1);
      }
    });
  }

  std::thread notifier([&] {
    for (int i = 0; i < total_rounds; ++i) {
      tm::atomically([&] {
        tokens.store(tokens.load() + 1);
        cv.notify_one();
      });
      if ((i & 63) == 0) std::this_thread::yield();
    }
    // Sweep stragglers: waiters that raced past a notify re-wait; wake them
    // until everyone drains the token pool.
    while (consumed.load() < total_rounds) {
      cv.notify_all();
      std::this_thread::yield();
    }
  });

  notifier.join();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(consumed.load(), total_rounds);
  EXPECT_EQ(tokens.load(), 0);
  tm::set_default_backend(Backend::EagerSTM);
}

// Spurious-wakeup freedom: with exactly K notifies for K sleeping waiters
// and no other wake source, exactly K waits complete -- no wait ever returns
// unpaired.
TEST_P(CondVarChurn, NoSpuriousWakeups) {
  const Backend backend = std::get<0>(GetParam());
  const int n_waiters = std::get<1>(GetParam());
  tm::set_default_backend(backend);
  constexpr int kIterations = 50;

  for (int iter = 0; iter < kIterations; ++iter) {
    CondVar cv;
    std::atomic<int> woke{0};
    std::vector<std::thread> waiters;
    for (int w = 0; w < n_waiters; ++w) {
      waiters.emplace_back([&] {
        NoSync sync;
        cv.wait_final(sync);
        woke.fetch_add(1);
      });
    }
    while (cv.waiter_count() < static_cast<std::size_t>(n_waiters))
      std::this_thread::yield();
    // Exactly n notifies; every one must pair.
    int selected = 0;
    for (int k = 0; k < n_waiters; ++k)
      if (cv.notify_one()) ++selected;
    EXPECT_EQ(selected, n_waiters);
    for (auto& w : waiters) w.join();
    EXPECT_EQ(woke.load(), n_waiters);
    // The n+1'th notify finds nobody.
    EXPECT_FALSE(cv.notify_one());
  }
  tm::set_default_backend(Backend::EagerSTM);
}

// notify_all vs concurrent re-waiters: the §3.3 privatization scenario.
// Waiters continuously re-wait; notify_all storms must never lose a node,
// corrupt the queue, or double-wake.
TEST_P(CondVarChurn, NotifyAllRewaitStorm) {
  const Backend backend = std::get<0>(GetParam());
  const int n_waiters = std::get<1>(GetParam());
  tm::set_default_backend(backend);
  constexpr int kRounds = 300;

  CondVar cv;
  std::atomic<bool> stop{false};
  std::atomic<long> wakeups{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < n_waiters; ++w) {
    waiters.emplace_back([&] {
      while (!stop.load()) {
        bool waited = false;
        tm::atomically([&] {
          // Leave immediately if shutdown started; otherwise sleep.
          if (stop.load()) return;
          tm::TxnSync sync;
          cv.wait_final(sync);
          waited = true;
        });
        if (waited) wakeups.fetch_add(1);
      }
    });
  }
  long notified = 0;
  for (int r = 0; r < kRounds; ++r) {
    notified += static_cast<long>(cv.notify_all());
    if ((r & 15) == 0) std::this_thread::yield();
  }
  stop.store(true);
  // Drain: keep notifying until every waiter observes `stop` and exits.
  std::atomic<bool> joined{false};
  std::thread drainer([&] {
    while (!joined.load()) {
      notified += static_cast<long>(cv.notify_all());
      std::this_thread::yield();
    }
  });
  for (auto& w : waiters) w.join();
  joined.store(true);
  drainer.join();
  // Every wakeup was caused by a notification that dequeued that waiter.
  EXPECT_LE(wakeups.load(), notified);
  EXPECT_EQ(cv.waiter_count(), 0u);
  tm::set_default_backend(Backend::EagerSTM);
}

// Two condition variables sharing one thread's node sequentially: the
// per-thread node is reused across CVs; pairing must stay exact.
TEST(CondVarProperty, NodeReuseAcrossCondVars) {
  CondVar cv_a, cv_b;
  std::atomic<int> phase{0};
  std::thread waiter([&] {
    NoSync sync;
    cv_a.wait_final(sync);
    phase.store(1);
    cv_b.wait_final(sync);
    phase.store(2);
  });
  while (cv_a.waiter_count() == 0) std::this_thread::yield();
  cv_a.notify_one();
  while (phase.load() < 1) std::this_thread::yield();
  while (cv_b.waiter_count() == 0) std::this_thread::yield();
  EXPECT_EQ(cv_a.waiter_count(), 0u);
  cv_b.notify_one();
  waiter.join();
  EXPECT_EQ(phase.load(), 2);
}

// Counting semantics of notify_all's return value.
TEST(CondVarProperty, NotifyAllReportsExactCount) {
  for (int n = 0; n <= 6; ++n) {
    CondVar cv;
    std::vector<std::thread> waiters;
    for (int i = 0; i < n; ++i) {
      waiters.emplace_back([&] {
        NoSync sync;
        cv.wait_final(sync);
      });
      while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
        std::this_thread::yield();
    }
    EXPECT_EQ(cv.notify_all(), static_cast<std::size_t>(n));
    for (auto& w : waiters) w.join();
  }
}

}  // namespace
}  // namespace tmcv
