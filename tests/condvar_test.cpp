// Condition-variable correctness from lock-based contexts: the
// Parsec+TMCondVar usage mode, plus the legacy facade.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "core/legacy_cv.h"
#include "sync/locks.h"

namespace tmcv {
namespace {

TEST(CondVar, NotifyOnEmptyQueueIsLost) {
  CondVar cv;
  EXPECT_FALSE(cv.notify_one());
  EXPECT_EQ(cv.notify_all(), 0u);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(CondVar, WaitThenNotifyOne) {
  CondVar cv;
  std::mutex m;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lk(m);
    LockSync sync(m);
    ready.store(true);
    cv.wait(sync);  // returns with the lock re-acquired
    woke.store(true);
    lk.release();  // we still own it; unlock manually
    m.unlock();
  });
  while (!ready.load()) std::this_thread::yield();
  while (cv.waiter_count() == 0) std::this_thread::yield();
  EXPECT_FALSE(woke.load());
  EXPECT_TRUE(cv.notify_one());
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(CondVar, ContinuationRunsUnderLock) {
  CondVar cv;
  std::mutex m;
  int shared = 0;
  std::atomic<bool> cont_ran{false};
  std::thread waiter([&] {
    m.lock();
    LockSync sync(m);
    cv.wait(sync, [&] {
      // The continuation must execute with the lock held.
      EXPECT_FALSE(m.try_lock());
      shared = 42;
      cont_ran.store(true);
    });
    // wait() with a continuation ends the sync block afterwards; the lock
    // is already released here.
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(cont_ran.load());
  EXPECT_EQ(shared, 42);
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(CondVar, WaitFinalDoesNotReacquire) {
  CondVar cv;
  std::mutex m;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    m.lock();
    LockSync sync(m);
    cv.wait_final(sync);
    // Lock already released; no re-acquire happened.
    EXPECT_TRUE(m.try_lock());
    m.unlock();
    done.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 6;
  CondVar cv;
  std::mutex m;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      m.lock();
      LockSync sync(m);
      cv.wait_final(sync);
      woke.fetch_add(1);
    });
  }
  while (cv.waiter_count() < kWaiters) std::this_thread::yield();
  EXPECT_EQ(cv.notify_all(), static_cast<std::size_t>(kWaiters));
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVar, NotifyOneWakesExactlyOne) {
  constexpr int kWaiters = 4;
  CondVar cv;
  std::mutex m;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      m.lock();
      LockSync sync(m);
      cv.wait_final(sync);
      woke.fetch_add(1);
    });
  }
  while (cv.waiter_count() < kWaiters) std::this_thread::yield();
  EXPECT_TRUE(cv.notify_one());
  while (woke.load() < 1) std::this_thread::yield();
  // Give any erroneous extra wakeups time to surface.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(woke.load(), 1);
  EXPECT_EQ(cv.waiter_count(), static_cast<std::size_t>(kWaiters - 1));
  cv.notify_all();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVar, FifoOrderByDefault) {
  CondVar cv;  // WakePolicy::FIFO
  std::mutex m;
  std::vector<int> wake_order;
  std::mutex order_m;
  std::vector<std::thread> waiters;
  std::atomic<int> started{0};
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      // Serialize enqueue order by waiting for our turn to call wait.
      while (started.load() != i) std::this_thread::yield();
      m.lock();
      LockSync sync(m);
      started.fetch_add(1);
      cv.wait_final(sync);
      std::lock_guard<std::mutex> g(order_m);
      wake_order.push_back(i);
    });
    while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
      std::this_thread::yield();
  }
  for (int i = 0; i < 3; ++i) {
    cv.notify_one();
    for (;;) {
      {
        std::lock_guard<std::mutex> g(order_m);
        if (wake_order.size() >= static_cast<std::size_t>(i + 1)) break;
      }
      std::this_thread::yield();
    }
  }
  for (auto& w : waiters) w.join();
  const std::vector<int> expected{0, 1, 2};
  EXPECT_EQ(wake_order, expected);
}

TEST(CondVar, LifoPolicyWakesNewestFirst) {
  CondVar cv(WakePolicy::LIFO);
  std::mutex m;
  std::vector<int> wake_order;
  std::mutex order_m;
  std::vector<std::thread> waiters;
  std::atomic<int> started{0};
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      while (started.load() != i) std::this_thread::yield();
      m.lock();
      LockSync sync(m);
      started.fetch_add(1);
      cv.wait_final(sync);
      std::lock_guard<std::mutex> g(order_m);
      wake_order.push_back(i);
    });
    while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
      std::this_thread::yield();
  }
  for (int i = 0; i < 3; ++i) {
    cv.notify_one();
    for (;;) {
      {
        std::lock_guard<std::mutex> g(order_m);
        if (wake_order.size() >= static_cast<std::size_t>(i + 1)) break;
      }
      std::this_thread::yield();
    }
  }
  for (auto& w : waiters) w.join();
  const std::vector<int> expected{2, 1, 0};
  EXPECT_EQ(wake_order, expected);
}

TEST(CondVar, NotifyBestSelectsHighestScore) {
  CondVar cv;
  std::mutex m;
  std::vector<std::uint64_t> wake_order;
  std::mutex order_m;
  std::vector<std::thread> waiters;
  std::atomic<int> started{0};
  const std::uint64_t tags[3] = {10, 30, 20};
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      while (started.load() != i) std::this_thread::yield();
      m.lock();
      LockSync sync(m);
      started.fetch_add(1);
      cv.wait_final(sync, tags[i]);
      std::lock_guard<std::mutex> g(order_m);
      wake_order.push_back(tags[i]);
    });
    while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
      std::this_thread::yield();
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cv.notify_best([](std::uint64_t tag) { return tag; }));
    for (;;) {
      {
        std::lock_guard<std::mutex> g(order_m);
        if (wake_order.size() >= static_cast<std::size_t>(i + 1)) break;
      }
      std::this_thread::yield();
    }
  }
  for (auto& w : waiters) w.join();
  const std::vector<std::uint64_t> expected{30, 20, 10};
  EXPECT_EQ(wake_order, expected);
}

TEST(CondVar, NotifyNWakesExactlyN) {
  constexpr int kWaiters = 5;
  CondVar cv;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      NoSync sync;
      cv.wait_final(sync);
      woke.fetch_add(1);
    });
    while (cv.waiter_count() < static_cast<std::size_t>(i + 1))
      std::this_thread::yield();
  }
  EXPECT_EQ(cv.notify_n(2), 2u);
  while (woke.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(woke.load(), 2);
  EXPECT_EQ(cv.waiter_count(), 3u);
  // Requesting more than available wakes only what exists.
  EXPECT_EQ(cv.notify_n(10), 3u);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), kWaiters);
  EXPECT_EQ(cv.notify_n(1), 0u);  // empty queue
}

TEST(LegacyCv, ProducerConsumerWithPredicateLoop) {
  condition_variable cv;
  std::mutex m;
  std::vector<int> queue;
  constexpr int kItems = 2000;
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return !queue.empty(); });
      EXPECT_EQ(queue.back(), i);
      queue.pop_back();
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        std::lock_guard<std::mutex> g(m);
        queue.push_back(i);
      }
      cv.notify_one();
      // Wait for consumption so items stay in lockstep.
      for (;;) {
        std::lock_guard<std::mutex> g(m);
        if (queue.empty()) break;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(queue.empty());
}

TEST(LegacyCv, WorksWithFutexLock) {
  condition_variable cv;
  FutexLock m;
  bool flag = false;
  std::thread waiter([&] {
    std::unique_lock<FutexLock> lk(m);
    cv.wait(lk, [&] { return flag; });
  });
  {
    std::unique_lock<FutexLock> lk(m);
    flag = true;
  }
  cv.notify_one();
  waiter.join();
  SUCCEED();
}

TEST(LegacyCv, NotifyAllWithPredicates) {
  condition_variable cv;
  std::mutex m;
  int stage = 0;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int want = 1; want <= 3; ++want) {
    threads.emplace_back([&, want] {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return stage >= want; });
      done.fetch_add(1);
    });
  }
  for (int s = 1; s <= 3; ++s) {
    while (cv.raw().waiter_count() < static_cast<std::size_t>(4 - s))
      std::this_thread::yield();
    {
      std::lock_guard<std::mutex> g(m);
      stage = s;
    }
    cv.notify_all();
    while (done.load() < s) std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 3);
}

TEST(CondVar, StatsCountersTrackOperations) {
  CondVar cv;
  // Lost notifies on an empty queue.
  cv.notify_one();
  cv.notify_all();
  CondVarStats s = cv.stats();
  EXPECT_EQ(s.notify_one_calls, 1u);
  EXPECT_EQ(s.notify_all_calls, 1u);
  EXPECT_EQ(s.lost_notifies, 2u);
  EXPECT_EQ(s.threads_woken, 0u);

  // One successful wait/notify pair.
  std::thread waiter([&] {
    NoSync sync;
    cv.wait_final(sync);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  EXPECT_TRUE(cv.notify_one());
  waiter.join();
  s = cv.stats();
  EXPECT_EQ(s.waits, 1u);
  EXPECT_EQ(s.notify_one_calls, 2u);
  EXPECT_EQ(s.threads_woken, 1u);

  // A timed wait that times out.
  NoSync sync;
  EXPECT_FALSE(cv.wait_for(sync, std::chrono::milliseconds(5)));
  s = cv.stats();
  EXPECT_EQ(s.timed_waits, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.waits, 1u);  // a timeout is not a completed wait
}

TEST(CondVar, NestedMonitorWaitReleasesAllLocks) {
  // §4.1's nested-monitor case (Wettstein): WAIT with several locks held
  // releases all of them and re-acquires outermost-first on wake.
  CondVar cv;
  std::mutex outer, inner;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    outer.lock();
    inner.lock();
    LockSync sync;
    sync.push(LockRef::of(outer));
    sync.push(LockRef::of(inner));
    cv.wait(sync);  // both released during the sleep, both held after
    EXPECT_FALSE(outer.try_lock());
    EXPECT_FALSE(inner.try_lock());
    inner.unlock();
    outer.unlock();
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  // Both locks must be free while the waiter sleeps.
  EXPECT_TRUE(outer.try_lock());
  EXPECT_TRUE(inner.try_lock());
  inner.unlock();
  outer.unlock();
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CondVar, NakedNotifyIsSafe) {
  // NOTIFY from a completely unsynchronized context must not race the
  // queue (the internal transaction protects it).
  CondVar cv;
  std::mutex m;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    m.lock();
    LockSync sync(m);
    cv.wait_final(sync);
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();  // no lock, no transaction
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CondVar, WaitFromUnsynchronizedContext) {
  // Permitted by the algorithm (NoSync); used by tests and esoteric callers.
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    NoSync sync;
    cv.wait_final(sync);
    woke.store(true);
  });
  while (cv.waiter_count() == 0) std::this_thread::yield();
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace tmcv
