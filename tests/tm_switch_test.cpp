// Mid-flight backend switching under load (the quiescence-point switch of
// tm::set_backend and the adaptive controller of tm::set_backend_auto):
// four threads run a mixed condvar-wait + transaction token economy while
// the main thread flips eager -> norec -> lazy -> auto.  Asserts token
// conservation, zero lost wakeups, and an exact Stats fold across the
// switch quiescence points (the per-backend abort matrix must sum to the
// scalar abort counter no matter where the switches landed).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <thread>
#include <vector>

#include "core/condvar.h"
#include "sync/sync_context.h"
#include "tm/algs/adaptive.h"
#include "tm/api.h"
#include "tm/txn_sync.h"
#include "tm/var.h"

namespace tmcv {
namespace {

using tm::Backend;

TEST(TmSwitch, QuiescedSwitchChangesDefault) {
  const Backend saved = tm::default_backend();
  tm::set_default_backend(Backend::EagerSTM);
  tm::stats_reset();

  EXPECT_TRUE(tm::set_backend(Backend::NOrec));
  EXPECT_EQ(tm::default_backend(), Backend::NOrec);
  EXPECT_FALSE(tm::set_backend(Backend::NOrec));  // no-op: already current
  EXPECT_TRUE(tm::set_backend(Backend::LazySTM));

  const tm::Stats s = tm::stats_snapshot();
  EXPECT_EQ(s.backend_switches, 2u);

  tm::set_default_backend(saved);
}

TEST(TmSwitch, MidFlightFlipsConserveTokensAndStats) {
  const Backend saved = tm::default_backend();
  tm::set_default_backend(Backend::EagerSTM);
  tm::stats_reset();

  constexpr int kWaiters = 2;
  constexpr int kProducers = 2;
  constexpr int kTokensPerWaiter = 3000;
  const int total = kWaiters * kTokensPerWaiter;

  CondVar cv;
  std::mutex m;
  tm::var<int> tokens(0);
  std::atomic<int> consumed{0};
  std::atomic<int> produced{0};

  // Consumers: one lock-based, one transactional -- both must survive the
  // default backend changing under them between (and only between) txns.
  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      const bool use_lock = (w % 2 == 0);
      for (int r = 0; r < kTokensPerWaiter; ++r) {
        if (use_lock) {
          std::unique_lock<std::mutex> lk(m);
          for (;;) {
            const bool got = tm::atomically([&] {
              if (tokens.load() > 0) {
                tokens.store(tokens.load() - 1);
                return true;
              }
              return false;
            });
            if (got) break;
            LockSync sync(m);
            cv.wait(sync);
          }
        } else {
          for (;;) {
            bool got = false;
            tm::atomically([&] {
              got = false;
              if (tokens.load() > 0) {
                tokens.store(tokens.load() - 1);
                got = true;
                return;
              }
              tm::TxnSync sync;
              cv.wait_final(sync);
            });
            if (got) break;
          }
        }
        consumed.fetch_add(1);
      }
    });
  }

  // Producers: transactional notify (deferred wake) and naked notify.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (true) {
        const int mine = produced.fetch_add(1);
        if (mine >= total) break;
        if (p % 2 == 0) {
          tm::atomically([&] {
            tokens.store(tokens.load() + 1);
            cv.notify_one();
          });
        } else {
          tm::atomically([&] { tokens.store(tokens.load() + 1); });
          cv.notify_one();
        }
      }
    });
  }

  // Main thread: flip backends mid-flight.  Each set_backend drains every
  // in-flight optimistic transaction at the serial lock, so the waiters and
  // producers above only ever observe a coherent backend per transaction.
  const Backend flips[] = {Backend::NOrec, Backend::LazySTM, Backend::EagerSTM,
                           Backend::NOrec, Backend::EagerSTM};
  for (const Backend b : flips) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    tm::set_backend(b);
  }
  while (consumed.load() < total) {
    cv.notify_all();  // sweep stragglers
    std::this_thread::yield();
  }
  // Finish with the adaptive controller running briefly: switches must keep
  // draining cleanly while it owns the default.
  tm::set_backend_auto(true);
  EXPECT_TRUE(tm::backend_auto_enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  tm::set_backend_auto(false);
  EXPECT_FALSE(tm::backend_auto_enabled());

  for (auto& p : producers) p.join();
  while (consumed.load() < total) {
    cv.notify_all();
    std::this_thread::yield();
  }
  for (auto& w : waiters) w.join();

  // Token conservation and zero lost wakeups.
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(tokens.load_plain(), 0);  // exactly `total` produced and consumed
  EXPECT_EQ(cv.waiter_count(), 0u);

  // Exact Stats fold across the switch quiescence points: every abort was
  // attributed to exactly one (backend, reason) cell, every switch counted,
  // and more than one backend actually ran.
  const tm::Stats s = tm::stats_snapshot();
  // The controller may have added switches of its own during the auto
  // phase; the five manual flips are the floor.
  EXPECT_GE(s.backend_switches, std::size(flips));
  std::uint64_t matrix_total = 0;
  for (std::size_t b = 0; b < tm::kStatsBackends; ++b)
    for (std::size_t r = 0; r < tm::kStatsAbortReasons; ++r)
      matrix_total += s.aborts_by_backend[b][r];
  EXPECT_EQ(matrix_total, s.aborts);
  EXPECT_GE(s.commits + s.ro_commits, static_cast<std::uint64_t>(total));

  tm::set_backend_auto(false);
  tm::set_default_backend(saved);
}

// The controller must converge to NOrec on an uncontended low-thread
// profile and count at least one switch doing it.
TEST(TmSwitch, AutoConvergesToNorecWhenUncontended) {
  const Backend saved = tm::default_backend();
  const tm::AdaptiveKnobs saved_knobs = tm::adaptive_knobs();
  tm::set_default_backend(Backend::EagerSTM);
  tm::stats_reset();

  tm::AdaptiveKnobs knobs;
  knobs.window_ms = 10;
  knobs.agree_windows = 2;
  knobs.dwell_windows = 2;
  knobs.min_ops = 50;
  tm::set_adaptive_knobs(knobs);

  tm::var<long> counter(0);
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_relaxed))
      tm::atomically([&] { counter.store(counter.load() + 1); });
  });

  tm::set_backend_auto(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tm::default_backend() != Backend::NOrec &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Backend picked = tm::default_backend();
  tm::set_backend_auto(false);
  stop.store(true, std::memory_order_relaxed);
  worker.join();

  EXPECT_EQ(picked, Backend::NOrec);
  const tm::Stats s = tm::stats_snapshot();
  EXPECT_GE(s.backend_switches, 1u);

  tm::set_adaptive_knobs(saved_knobs);
  tm::set_default_backend(saved);
}

}  // namespace
}  // namespace tmcv
