// Barrier, task-queue set, thread pool, pipeline, ordered output and work
// distributor across all three sync policies.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/barrier.h"
#include "apps/latch.h"
#include "apps/ordered_output.h"
#include "apps/pipeline.h"
#include "apps/sync_policy.h"
#include "apps/task_queue.h"
#include "apps/thread_pool.h"
#include "apps/work_distributor.h"

namespace tmcv::apps {
namespace {

template <typename Policy>
class BlocksTest : public ::testing::Test {};

using Policies = ::testing::Types<PthreadPolicy, TmCvPolicy, TxnPolicy>;

class PolicyNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return T::name();
  }
};

TYPED_TEST_SUITE(BlocksTest, Policies, PolicyNames);

TYPED_TEST(BlocksTest, BarrierPhasesStayInLockstep) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 50;
  CvBarrier<TypeParam> barrier(kThreads);
  std::atomic<int> phase_counts[kPhases]{};
  std::atomic<bool> out_of_step{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread must have arrived at phase p.
        if (phase_counts[p].load() != kThreads) out_of_step.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(out_of_step.load());
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kPhases));
}

TYPED_TEST(BlocksTest, BarrierReusableAcrossGenerations) {
  CvBarrier<TypeParam> barrier(2);
  for (int round = 0; round < 20; ++round) {
    std::thread other([&] { barrier.arrive_and_wait(); });
    barrier.arrive_and_wait();
    other.join();
  }
  EXPECT_EQ(barrier.generation(), 20u);
}

TYPED_TEST(BlocksTest, TaskQueueSetDrainsAllTasks) {
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kTasksPerWorker = 40;
  TaskQueueSet<TypeParam> tq(kWorkers, 128);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t task = 0;
      while (tq.take(w, task)) {
        sum.fetch_add(task);
        tq.complete();
      }
    });
  }
  std::uint64_t expected = 0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (std::size_t i = 0; i < kTasksPerWorker; ++i) {
      const std::uint64_t task = w * 1000 + i + 1;
      ASSERT_TRUE(tq.add(w, task));
      expected += task;
    }
  }
  tq.wait_all();
  EXPECT_EQ(tq.pending(), 0u);
  tq.stop();
  for (auto& t : workers) t.join();
  EXPECT_EQ(sum.load(), expected);
}

TYPED_TEST(BlocksTest, TaskQueueSetStealsFromLoadedQueue) {
  // All tasks go to queue 0; workers 1 and 2 must steal to make progress.
  constexpr std::size_t kWorkers = 3;
  TaskQueueSet<TypeParam> tq(kWorkers, 256);
  std::atomic<int> done_by[kWorkers]{};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t task = 0;
      while (tq.take(w, task)) {
        done_by[w].fetch_add(1);
        tq.complete();
      }
    });
  }
  constexpr int kTasks = 120;
  for (int i = 0; i < kTasks; ++i) ASSERT_TRUE(tq.add(0, i));
  tq.wait_all();
  tq.stop();
  for (auto& t : workers) t.join();
  int total = 0;
  for (auto& d : done_by) total += d.load();
  EXPECT_EQ(total, kTasks);
}

TYPED_TEST(BlocksTest, ThreadPoolExecutesAllJobs) {
  std::atomic<std::uint64_t> sum{0};
  {
    ThreadPool<TypeParam> pool(3, 16,
                               [&](std::uint64_t job) { sum.fetch_add(job); });
    for (std::uint64_t j = 1; j <= 200; ++j) ASSERT_TRUE(pool.submit(j));
    pool.wait_idle();
    EXPECT_EQ(sum.load(), 200u * 201u / 2u);
  }  // destructor shuts down cleanly
}

TYPED_TEST(BlocksTest, ThreadPoolWaitIdleBlocksUntilDone) {
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  ThreadPool<TypeParam> pool(2, 8, [&](std::uint64_t) {
    const int r = running.fetch_add(1) + 1;
    int m = max_running.load();
    while (r > m && !max_running.compare_exchange_weak(m, r)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    running.fetch_sub(1);
  });
  for (int j = 0; j < 20; ++j) ASSERT_TRUE(pool.submit(j));
  pool.wait_idle();
  EXPECT_EQ(running.load(), 0);
  EXPECT_LE(max_running.load(), 2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit(1));  // after shutdown
}

TYPED_TEST(BlocksTest, PipelinePreservesEveryItem) {
  std::atomic<std::uint64_t> sink_sum{0};
  std::atomic<int> sink_count{0};
  {
    typename Pipeline<TypeParam>::Config cfg;
    cfg.stages = 4;
    cfg.workers_per_stage = 2;
    cfg.queue_capacity = 8;
    Pipeline<TypeParam> pipe(
        cfg, [](std::size_t, std::uint64_t item) { return item + 1; },
        [&](std::uint64_t item) {
          sink_sum.fetch_add(item);
          sink_count.fetch_add(1);
        });
    constexpr int kItems = 300;
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(pipe.feed(i));
    pipe.finish();
    EXPECT_EQ(sink_count.load(), kItems);
    // Each item gained +1 per stage (4 stages).
    std::uint64_t expected = 0;
    for (int i = 0; i < kItems; ++i) expected += i + 4;
    EXPECT_EQ(sink_sum.load(), expected);
  }
}

TYPED_TEST(BlocksTest, OrderedOutputEmitsInSequence) {
  OrderedOutput<TypeParam> out;
  std::vector<std::uint64_t> emitted;
  std::mutex emitted_m;
  constexpr std::uint64_t kItems = 60;
  std::vector<std::thread> submitters;
  // Submit out of order from several threads.
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t seq = t; seq < kItems; seq += 4) {
        out.submit(seq, [&, seq] {
          std::lock_guard<std::mutex> g(emitted_m);
          emitted.push_back(seq);
        });
      }
    });
  }
  for (auto& s : submitters) s.join();
  ASSERT_EQ(emitted.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(out.next_sequence(), kItems);
}

TYPED_TEST(BlocksTest, LatchReleasesAtTarget) {
  Latch<TypeParam> latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.wait();
    released.store(true);
  });
  latch.report();
  latch.report();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(released.load());  // 2 of 3
  latch.report();
  waiter.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(latch.arrived(), 3u);
}

TYPED_TEST(BlocksTest, LatchReusableAcrossRounds) {
  Latch<TypeParam> latch;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::thread> reporters;
    for (int r = 0; r < 4; ++r)
      reporters.emplace_back([&] { latch.report(); });
    latch.wait_and_reset(4);
    for (auto& t : reporters) t.join();
    EXPECT_EQ(latch.arrived(), 0u);
  }
}

TYPED_TEST(BlocksTest, PipelineSerialLastStage) {
  // dedup's configuration: parallel middle stages, a single output worker.
  std::vector<std::uint64_t> sink_order;
  std::mutex sink_m;
  {
    typename Pipeline<TypeParam>::Config cfg;
    cfg.stages = 3;
    cfg.workers_per_stage = 3;
    cfg.workers_last_stage = 1;
    cfg.queue_capacity = 4;
    Pipeline<TypeParam> pipe(
        cfg, [](std::size_t, std::uint64_t item) { return item; },
        [&](std::uint64_t item) {
          std::lock_guard<std::mutex> g(sink_m);
          sink_order.push_back(item);
        });
    for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(pipe.feed(i));
    pipe.finish();
  }
  // Single sink worker: all items arrive (order may interleave upstream).
  EXPECT_EQ(sink_order.size(), 100u);
  std::set<std::uint64_t> unique(sink_order.begin(), sink_order.end());
  EXPECT_EQ(unique.size(), 100u);
}

TYPED_TEST(BlocksTest, ReorderBufferFlushesInOrder) {
  ReorderBuffer<TypeParam> rb(16);
  std::vector<std::uint64_t> emitted;
  auto emit = [&](std::uint64_t seq, std::uint64_t payload) {
    emitted.push_back(seq);
    EXPECT_EQ(payload, seq * 10);
  };
  // Insert 0..7 in a scrambled order; emission must be 0..7 exactly.
  const std::uint64_t order[] = {3, 0, 1, 5, 2, 4, 7, 6};
  for (std::uint64_t seq : order) rb.insert(seq, seq * 10, emit);
  ASSERT_EQ(emitted.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(rb.next_sequence(), 8u);
}

TYPED_TEST(BlocksTest, ReorderBufferWindowWraps) {
  // More items than the window, in order: the buffer recycles slots.
  ReorderBuffer<TypeParam> rb(4);
  std::uint64_t emitted = 0;
  for (std::uint64_t seq = 0; seq < 40; ++seq)
    rb.insert(seq, seq, [&](std::uint64_t s, std::uint64_t) {
      EXPECT_EQ(s, emitted);
      ++emitted;
    });
  EXPECT_EQ(emitted, 40u);
}

TYPED_TEST(BlocksTest, ReorderBufferHoldsGapThenFlushes) {
  ReorderBuffer<TypeParam> rb(8);
  std::vector<std::uint64_t> emitted;
  auto emit = [&](std::uint64_t seq, std::uint64_t) {
    emitted.push_back(seq);
  };
  rb.insert(1, 0, emit);
  rb.insert(2, 0, emit);
  EXPECT_TRUE(emitted.empty());  // 0 missing: nothing may flush
  rb.insert(0, 0, emit);         // gap filled: 0,1,2 flush together
  const std::vector<std::uint64_t> expected{0, 1, 2};
  EXPECT_EQ(emitted, expected);
}

TYPED_TEST(BlocksTest, WorkDistributorRoundsComplete) {
  constexpr std::size_t kSlaves = 3;
  constexpr int kRounds = 30;
  WorkDistributor<TypeParam> dist(kSlaves);
  std::atomic<std::uint64_t> work_done{0};
  std::vector<std::thread> slaves;
  for (std::size_t s = 0; s < kSlaves; ++s) {
    slaves.emplace_back([&, s] {
      std::uint64_t cmd = 0;
      while (dist.await_command(s, cmd)) {
        work_done.fetch_add(cmd);
        dist.report_done();
      }
    });
  }
  std::uint64_t expected = 0;
  for (int r = 1; r <= kRounds; ++r) {
    dist.distribute_and_wait(r);
    expected += static_cast<std::uint64_t>(r) * kSlaves;
  }
  dist.stop();
  for (auto& s : slaves) s.join();
  EXPECT_EQ(work_done.load(), expected);
}

}  // namespace
}  // namespace tmcv::apps
